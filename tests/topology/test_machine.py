"""Tests for machine topology and presets."""

import pytest

from repro.topology import (
    Machine,
    dell_r730,
    dell_r730_spec,
    dell_skylake,
    dell_skylake_spec,
)


def test_r730_matches_paper_testbed():
    spec = dell_r730_spec()
    assert spec.num_nodes == 2
    assert spec.cpu.cores == 14
    assert spec.cpu.ghz == pytest.approx(2.0)


def test_skylake_matches_paper_testbed():
    spec = dell_skylake_spec()
    assert spec.num_nodes == 2
    assert spec.cpu.cores == 24


def test_machine_builds_all_cores():
    m = dell_r730()
    assert len(m.cores) == 28
    assert len(m.nodes) == 2
    assert m.node_of_core(0) == 0
    assert m.node_of_core(14) == 1
    assert [c.core_id for c in m.cores_on_node(1)] == list(range(14, 28))


def test_core_ids_unique_and_ordered():
    m = dell_skylake()
    assert [c.core_id for c in m.cores] == list(range(48))


def test_core_charge_accumulates():
    m = dell_r730()
    core = m.core(0)
    core.charge(100)
    core.charge(50)
    assert core.busy_ns == 150
    with pytest.raises(ValueError):
        core.charge(-1)


def test_core_window_utilization():
    m = dell_r730()
    core = m.core(3)
    core.reset_window()
    core.charge(400)
    m.env._now = 1000
    assert core.window_utilization() == pytest.approx(0.4)


def test_alloc_region_places_on_node():
    m = dell_r730()
    r = m.alloc_region("buf", 1, 4096)
    assert r.home_node == 1
    with pytest.raises(ValueError):
        m.alloc_region("bad", 7, 4096)


def test_reset_measurement_windows():
    m = dell_r730()
    r = m.alloc_region("buf", 0, 4096)
    m.memory.dma_write(1, r, 4096)
    m.core(0).charge(100)
    m.reset_measurement_windows()
    assert m.memory.total_window_bandwidth_bps() == 0.0
    assert m.core(0).window_utilization() == 0.0


def test_seed_controls_rng():
    a, b = dell_r730(seed=1), dell_r730(seed=1)
    assert a.rng.random() == b.rng.random()
    c = dell_r730(seed=2)
    assert a.rng.random() != c.rng.random()


def test_invalid_spec_rejected():
    from repro.topology.constants import (CpuSpec, InterconnectSpec,
                                          MachineSpec, MemorySpec)
    with pytest.raises(ValueError):
        MachineSpec(
            name="bad", num_nodes=0,
            cpu=CpuSpec(cores=1, ghz=1.0, llc_bytes=1),
            memory=MemorySpec(bytes_per_sec=1.0, capacity_bytes=1),
            interconnect=InterconnectSpec(bytes_per_sec_per_direction=1.0))


def test_machine_repr_mentions_name():
    assert "dell-r730" in repr(dell_r730())
