"""Golden tests: the vectorised batch kernels are bit-for-bit identical
to the scalar per-packet expressions they replace, with and without
numpy."""

import pytest

import repro.memory.batch as batch
from repro.memory.batch import (
    _VECTOR_MIN,
    ddio_split,
    dma_line_latencies,
    service_durations,
)

# Enough elements to take the numpy path, with awkward sizes (odd bytes,
# zero, round-half-even candidates) mixed in.
SIZES = [0, 1, 63, 64, 65, 256, 1500, 4096, 65536, 1048577, 7, 333]
RATES = [1e9, 2.5e9, 39.0625e9 / 3, 985.0]


@pytest.fixture(params=[True, False], ids=["numpy", "scalar"])
def numpy_mode(request, monkeypatch):
    if not request.param:
        monkeypatch.setattr(batch, "_np", None)
    elif batch._np is None:
        pytest.skip("numpy unavailable")
    return request.param


@pytest.mark.parametrize("rate", RATES)
def test_service_durations_match_scalar_expression(numpy_mode, rate):
    got = service_durations(SIZES, rate)
    assert got == [int(round(n * 1e9 / rate)) for n in SIZES]
    assert all(isinstance(v, int) for v in got)


def test_service_durations_below_vector_min_uses_scalar_loop():
    sizes = SIZES[:_VECTOR_MIN - 1]
    assert service_durations(sizes, 1e9) == [
        int(round(n * 1e9 / 1e9)) for n in sizes]


@pytest.mark.parametrize("capacity", [0, 64, 4096, 1 << 30])
def test_ddio_split_matches_scalar_expression(numpy_mode, capacity):
    absorbed, spills = ddio_split(SIZES, capacity)
    assert absorbed == [min(n, capacity) for n in SIZES]
    assert spills == [n - min(n, capacity) for n in SIZES]
    # Conservation: every byte is either absorbed or spilled.
    assert [a + s for a, s in zip(absorbed, spills)] == SIZES


def test_dma_line_latencies_match_scalar_expression(numpy_mode):
    nlines = [0, 1, 2, 64, 100, 3, 17, 1024, 5]
    hits = [True, False, True, True, False, False, True, False, True]
    got = dma_line_latencies(nlines, hits, hit_ns=20, miss_ns=95)
    assert got == [n * (20 if h else 95)
                   for n, h in zip(nlines, hits)]


def test_empty_batches(numpy_mode):
    assert service_durations([], 1e9) == []
    assert ddio_split([], 4096) == ([], [])
    assert dma_line_latencies([], [], 20, 95) == []
