"""Unit tests for the LLC model."""

import pytest

from repro.memory.llc import LastLevelCache
from repro.memory.region import Region


def make_llc(capacity=1000, ddio_fraction=0.1):
    return LastLevelCache(node_id=0, capacity=capacity,
                          ddio_fraction=ddio_fraction)


def region(name="r", node=0, size=500, nt=False):
    return Region(name=name, home_node=node, size=size, non_temporal=nt)


def test_empty_cache_zero_residency():
    llc = make_llc()
    assert llc.residency(region()) == 0.0


def test_load_establishes_residency():
    llc = make_llc()
    r = region(size=500)
    llc.load(r, 250)
    assert llc.residency(r) == pytest.approx(0.5)
    llc.load(r, 250)
    assert llc.residency(r) == pytest.approx(1.0)


def test_load_cannot_exceed_region_size():
    llc = make_llc()
    r = region(size=100)
    llc.load(r, 500)
    assert llc.resident_bytes(r) == 100
    assert llc.occupied == 100


def test_lru_eviction_on_overflow():
    llc = make_llc(capacity=1000)
    old = region("old", size=600)
    new = region("new", size=600)
    llc.load(old, 600)
    llc.load(new, 600)
    assert llc.residency(old) == 0.0
    assert llc.resident_bytes(new) == 600


def test_touch_protects_from_eviction():
    llc = make_llc(capacity=1000)
    a = region("a", size=500)
    b = region("b", size=400)
    llc.load(a, 500)
    llc.load(b, 400)
    llc.touch(a)  # now b is LRU
    llc.load(region("c", size=500), 500)
    assert llc.residency(b) == 0.0
    assert llc.resident_bytes(a) == 500


def test_single_region_larger_than_cache_clamps():
    llc = make_llc(capacity=1000)
    big = region("big", size=5000)
    llc.load(big, 5000)
    assert llc.occupied == 1000
    assert llc.residency(big) == pytest.approx(0.2)


def test_non_temporal_regions_never_allocate():
    llc = make_llc()
    nt = region("stream", size=500, nt=True)
    llc.load(nt, 500)
    assert llc.residency(nt) == 0.0
    assert llc.ddio_write(nt, 500) == 0


def test_ddio_write_capped_by_slice():
    llc = make_llc(capacity=1000, ddio_fraction=0.1)  # slice = 100
    r = region(size=500)
    absorbed = llc.ddio_write(r, 400)
    assert absorbed == 100
    assert llc.resident_bytes(r) == 100


def test_ddio_slice_evicts_older_ddio_allocations():
    llc = make_llc(capacity=1000, ddio_fraction=0.2)  # slice = 200
    a = region("a", size=300)
    b = region("b", size=300)
    assert llc.ddio_write(a, 150) == 150
    assert llc.ddio_write(b, 150) == 150
    # a's DDIO bytes were squeezed to keep the slice at 200
    assert llc.resident_bytes(a) + llc.resident_bytes(b) <= 1000
    total_ddio = llc._ddio_occupied
    assert total_ddio <= 200


def test_invalidate_reduces_residency():
    llc = make_llc()
    r = region(size=500)
    llc.load(r, 500)
    dropped = llc.invalidate(r, 200)
    assert dropped == 200
    assert llc.resident_bytes(r) == 300
    assert llc.invalidated_bytes == 200


def test_invalidate_whole_region():
    llc = make_llc()
    r = region(size=500)
    llc.load(r, 500)
    assert llc.invalidate(r) == 500
    assert llc.residency(r) == 0.0


def test_invalidate_absent_region_is_noop():
    llc = make_llc()
    assert llc.invalidate(region()) == 0


def test_record_access_counts_hits_and_misses():
    llc = make_llc()
    r = region(size=1000)
    llc.load(r, 500)
    fraction = llc.record_access(r, 1000)
    assert fraction == pytest.approx(0.5)
    assert llc.hits_bytes == 500
    assert llc.miss_bytes == 500


def test_invalid_construction():
    with pytest.raises(ValueError):
        LastLevelCache(0, capacity=0, ddio_fraction=0.1)
    with pytest.raises(ValueError):
        LastLevelCache(0, capacity=100, ddio_fraction=0.0)
    with pytest.raises(ValueError):
        LastLevelCache(0, capacity=100, ddio_fraction=1.5)


def test_region_validation():
    with pytest.raises(ValueError):
        Region(name="bad", home_node=0, size=0)
    with pytest.raises(ValueError):
        Region(name="bad", home_node=-1, size=10)


def test_occupancy_never_negative_after_mixed_ops():
    llc = make_llc(capacity=500, ddio_fraction=0.5)
    regions = [region(f"r{i}", size=200) for i in range(5)]
    for i, r in enumerate(regions):
        if i % 2:
            llc.ddio_write(r, 200)
        else:
            llc.load(r, 200)
        llc.invalidate(regions[i // 2], 50)
    assert llc.occupied >= 0
    assert llc._ddio_occupied >= 0
    assert llc.occupied <= llc.capacity
