"""Tests for the MemorySystem access router: the NUDMA rules themselves."""

import pytest

from repro.topology import dell_r730


@pytest.fixture
def machine():
    return dell_r730()


def ring(machine, node=0, size=64 * 1024):
    return machine.alloc_region("ring", node, size)


# ---------------------------------------------------------- DDIO rules


def test_local_dma_write_lands_in_llc(machine):
    r = ring(machine)
    machine.memory.dma_write(0, r, 1500)
    # Fresh read by the local CPU is a hit: zero extra latency.
    assert machine.memory.read_fresh_dma_line(0, r) == 0
    assert machine.memory.cpu_read_fresh_dma(0, r, 1500) == 0
    # No DRAM traffic for the DDIO-absorbed write.
    assert machine.nodes[0].dram.write_bytes == 0


def test_remote_dma_write_goes_to_dram_and_costs_a_miss(machine):
    r = ring(machine)
    machine.memory.dma_write(1, r, 1500)
    latency = machine.memory.read_fresh_dma_line(0, r)
    # The paper's ~80 ns completion-read delta (§5.1.1).
    assert 60 <= latency <= 120
    assert machine.nodes[0].dram.write_bytes == 1500


def test_remote_dma_write_invalidates_cached_copy(machine):
    r = ring(machine)
    machine.memory.cpu_stream_read(0, r, r.size)  # cache it
    assert machine.nodes[0].llc.residency(r) > 0.9
    machine.memory.dma_write(1, r, r.size)
    assert machine.nodes[0].llc.residency(r) < 0.1


def test_ddio_disabled_forces_dram_even_locally(machine):
    machine.memory.ddio_enabled = False
    r = ring(machine)
    machine.memory.dma_write(0, r, 1500)
    assert machine.nodes[0].dram.write_bytes == 1500
    assert machine.memory.read_fresh_dma_line(0, r) > 0


def test_remote_dma_write_crosses_interconnect(machine):
    r = ring(machine)
    link = machine.interconnect.link(1, 0)
    before = link.server.bytes_total
    machine.memory.dma_write(1, r, 1500)
    assert link.server.bytes_total - before == 1500


def test_local_dma_write_does_not_cross_interconnect(machine):
    r = ring(machine)
    for link in machine.interconnect.links():
        assert link.server.bytes_total == 0
    machine.memory.dma_write(0, r, 1500)
    for link in machine.interconnect.links():
        assert link.server.bytes_total == 0


# ------------------------------------------------------- DMA read rules


def test_local_dma_read_of_cached_data_skips_dram(machine):
    r = ring(machine)
    machine.memory.cpu_stream_read(0, r, r.size)
    machine.nodes[0].dram.read_bytes = 0
    machine.memory.dma_read(0, r, 1500)
    assert machine.nodes[0].dram.read_bytes == 0


def test_remote_dma_read_always_probes_dram(machine):
    # Paper §5.1.1: remote Tx memory bandwidth equals its throughput
    # because the parallel DRAM probe is charged even on an LLC hit.
    r = ring(machine)
    machine.memory.cpu_stream_read(0, r, r.size)
    machine.nodes[0].dram.read_bytes = 0
    machine.memory.dma_read(1, r, 1500)
    assert machine.nodes[0].dram.read_bytes == 1500


def test_dma_read_does_not_invalidate(machine):
    r = ring(machine)
    machine.memory.cpu_stream_read(0, r, r.size)
    resident = machine.nodes[0].llc.residency(r)
    machine.memory.dma_read(1, r, r.size)
    assert machine.nodes[0].llc.residency(r) == pytest.approx(resident)


# ----------------------------------------------------- CPU-side accesses


def test_cpu_stream_read_remote_crosses_interconnect(machine):
    remote = machine.alloc_region("remote", 1, 64 * 1024)
    link_back = machine.interconnect.link(1, 0)
    machine.memory.cpu_stream_read(0, remote, remote.size)
    assert link_back.server.bytes_total >= remote.size


def test_cpu_stream_read_cached_is_free(machine):
    r = ring(machine)
    machine.memory.cpu_stream_read(0, r, r.size)
    assert machine.memory.cpu_stream_read(0, r, r.size) == 0


def test_cpu_copy_charges_base_cost(machine):
    src = machine.alloc_region("src", 0, 4096)
    dst = machine.alloc_region("dst", 0, 4096)
    # Warm both so only the base per-byte cost remains.
    machine.memory.cpu_copy(0, src, dst, 4096)
    warm = machine.memory.cpu_copy(0, src, dst, 4096)
    expected = int(4096 * machine.spec.software.copy_ns_per_byte)
    assert warm == expected


def test_non_temporal_write_skips_llc_and_fill(machine):
    nt = machine.alloc_region("stream-out", 1, 64 * 1024, non_temporal=True)
    machine.memory.cpu_stream_write(0, nt, nt.size)
    assert machine.nodes[1].llc.residency(nt) == 0.0
    assert machine.nodes[0].llc.residency(nt) == 0.0
    assert machine.nodes[1].dram.write_bytes == nt.size
    # No write-allocate fill read.
    assert machine.nodes[1].dram.read_bytes == 0


def test_cacheline_read_miss_latency_local_vs_remote(machine):
    local = machine.alloc_region("l", 0, 4096)
    remote = machine.alloc_region("r", 1, 4096)
    local_lat = machine.memory.cacheline_read(0, local)
    remote_lat = machine.memory.cacheline_read(0, remote)
    assert local_lat >= machine.spec.memory.miss_latency_ns
    assert remote_lat > local_lat  # remote adds interconnect crossings


def test_cacheline_read_hit_after_fill(machine):
    r = machine.alloc_region("l", 0, 64)
    machine.memory.cacheline_read(0, r)
    assert machine.memory.cacheline_read(0, r) == 0


def test_fresh_dma_hit_requires_matching_node(machine):
    r = ring(machine, node=0)
    machine.memory.dma_write(0, r, 1500)
    # A core on node 1 reading the same completion misses across QPI.
    assert machine.memory.read_fresh_dma_line(1, r) > 0


def test_window_bandwidth_reporting(machine):
    r = ring(machine)
    machine.memory.reset_windows()
    machine.memory.dma_write(1, r, 10_000)
    machine.env._now = 1000  # 10 KB in 1 us = 10 GB/s
    assert machine.memory.node_window_bandwidth_bps(0) == pytest.approx(
        1e10, rel=0.01)
    assert machine.memory.total_window_bandwidth_bps() == pytest.approx(
        1e10, rel=0.01)
