"""Tests for tracing and the seeded RNG."""

import pytest

from repro.sim import SimRandom, TraceRecord, Tracer
from repro.units import bytes_per_sec, gbps


def test_tracer_disabled_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(10, "nic", "tx")
    assert tracer.records == []


def test_tracer_records_and_filters():
    tracer = Tracer(enabled=True)
    tracer.emit(10, "nic.pf0", "tx", {"bytes": 64})
    tracer.emit(20, "nic.pf1", "rx")
    tracer.emit(30, "dram0", "read")
    assert len(tracer.records) == 3
    assert [r.event for r in tracer.by_source("nic.pf0")] == ["tx"]
    assert len(tracer.by_event("rx")) == 1
    assert tracer.counts() == {"tx": 1, "rx": 1, "read": 1}


def test_tracer_source_prefix_filter():
    tracer = Tracer(enabled=True, source_prefix="nic")
    tracer.emit(1, "nic.pf0", "tx")
    tracer.emit(2, "dram0", "read")
    assert len(tracer.records) == 1


def test_tracer_sinks_invoked():
    seen = []
    tracer = Tracer(enabled=True, sinks=[seen.append])
    tracer.emit(5, "x", "y")
    assert len(seen) == 1
    assert isinstance(seen[0], TraceRecord)


def test_tracer_clear():
    tracer = Tracer(enabled=True)
    tracer.emit(1, "a", "b")
    tracer.clear()
    assert tracer.records == []


def test_trace_record_str():
    record = TraceRecord(100, "nic", "tx", 42)
    assert "nic" in str(record) and "tx" in str(record)


def test_chrome_trace_export():
    import json

    tracer = Tracer(enabled=True)
    tracer.emit(1_000, "nic.pf0", "dev.pf_down", "cause=test")
    tracer.emit(2_500, "team", "failover.begin")
    doc = json.loads(tracer.to_chrome_trace(process_name="unit"))
    assert doc["displayTimeUnit"] == "ns"
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": "unit"}} in meta
    assert sorted(e["args"]["name"] for e in meta
                  if e["name"] == "thread_name") == ["nic.pf0", "team"]
    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == 2
    down = next(e for e in instants if e["name"] == "dev.pf_down")
    assert down["ts"] == 1.0          # 1000 ns -> 1 us
    assert down["cat"] == "dev"
    assert down["args"] == {"payload": "cause=test"}
    begin = next(e for e in instants if e["name"] == "failover.begin")
    assert "args" not in begin        # payload-less events stay bare


def test_simrandom_same_seed_same_stream():
    a, b = SimRandom(7), SimRandom(7)
    assert [a.randint(0, 100) for _ in range(10)] == [
        b.randint(0, 100) for _ in range(10)]


def test_simrandom_children_independent_by_name():
    root = SimRandom(7)
    x = root.child("x").random()
    y = SimRandom(7).child("y").random()
    assert x != y


def test_simrandom_child_order_independent():
    r1 = SimRandom(3)
    r1.random()  # consume some parent state
    assert r1.child("net").random() == SimRandom(3).child("net").random()


def test_simrandom_bernoulli_bounds():
    rng = SimRandom(0)
    with pytest.raises(ValueError):
        rng.bernoulli(1.5)
    assert rng.bernoulli(1.0) is True or True  # valid call


def test_simrandom_helpers():
    rng = SimRandom(1)
    assert 0.0 <= rng.uniform(0, 1) <= 1.0
    assert rng.choice([1, 2, 3]) in (1, 2, 3)
    items = [1, 2, 3, 4]
    rng.shuffle(items)
    assert sorted(items) == [1, 2, 3, 4]
    assert rng.expovariate(1.0) >= 0


def test_unit_conversions_roundtrip():
    assert gbps(bytes_per_sec(100.0)) == pytest.approx(100.0)
    assert gbps(1.25e9) == pytest.approx(10.0)
