"""Unit tests for Resource, Store and bandwidth servers."""

import pytest

from repro.sim import (
    BandwidthServer,
    Environment,
    ProcessorSharingServer,
    Resource,
    SimulationError,
    Store,
)


# ---------------------------------------------------------------- Resource

def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.count == 2
    assert res.queue_length == 1


def test_resource_release_admits_waiter():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert not r2.triggered
    res.release(r1)
    assert r2.triggered


def test_resource_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)
    holder_times = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(100)
        holder_times.append(env.now)

    def waiter():
        with res.request() as req:
            yield req
            holder_times.append(env.now)

    env.process(holder())
    env.process(waiter())
    env.run()
    assert holder_times == [100, 100]


def test_resource_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    res.release(r2)  # cancel while queued
    res.release(r1)
    assert res.count == 0
    assert res.queue_length == 0


def test_resource_double_release_harmless():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    res.release(r1)
    res.release(r1)
    assert res.count == 0


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(tag, hold):
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(hold)

    for tag in ("a", "b", "c"):
        env.process(user(tag, 10))
    env.run()
    assert order == ["a", "b", "c"]


# ------------------------------------------------------------------- Store

def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    env.process(consumer())
    store.put("pkt")
    env.run()
    assert got == ["pkt"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(40)
        store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(40, "late")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    assert store.put("a").triggered
    blocked = store.put("b")
    assert not blocked.triggered

    def consumer():
        yield store.get()

    env.process(consumer())
    env.run()
    assert blocked.triggered
    assert store.level == 1  # "b" admitted


def test_store_fifo_ordering():
    env = Environment()
    store = Store(env)
    for item in (1, 2, 3):
        store.put(item)
    assert store.try_get() == 1
    assert store.try_get() == 2
    assert store.try_get() == 3
    assert store.try_get() is None


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_handoff_to_waiting_getter_skips_buffer():
    env = Environment()
    store = Store(env, capacity=1)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    env.process(consumer())
    env.run()
    store.put("x")
    env.run()
    assert got == ["x"]
    assert store.level == 0


# -------------------------------------------------------- BandwidthServer

def test_bandwidth_service_time():
    env = Environment()
    link = BandwidthServer(env, bytes_per_sec=1e9)  # 1 GB/s = 1 B/ns
    assert link.service_time(1000) == 1000
    assert link.service_time(0) == 0


def test_bandwidth_transfers_queue_fifo():
    env = Environment()
    link = BandwidthServer(env, bytes_per_sec=1e9)
    done = []

    def sender(tag, nbytes):
        yield link.transfer(nbytes)
        done.append((tag, env.now))

    env.process(sender("a", 1000))
    env.process(sender("b", 1000))
    env.run()
    assert done == [("a", 1000), ("b", 2000)]


def test_bandwidth_queueing_delay_visible():
    env = Environment()
    link = BandwidthServer(env, bytes_per_sec=1e9)
    link.transfer(5000)
    assert link.queueing_delay() == 5000


def test_bandwidth_account_matches_transfer():
    env = Environment()
    link = BandwidthServer(env, bytes_per_sec=1e9)
    assert link.account(100) == 100
    # second access queues behind the first
    assert link.account(100) == 200


def test_bandwidth_idle_gap_not_counted_busy():
    env = Environment()
    link = BandwidthServer(env, bytes_per_sec=1e9)

    def body():
        yield link.transfer(100)
        yield env.timeout(900)

    env.process(body())
    env.run()
    assert env.now == 1000
    assert link.utilization() == pytest.approx(0.1)


def test_bandwidth_window_throughput():
    env = Environment()
    link = BandwidthServer(env, bytes_per_sec=2e9)

    def body():
        link.reset_window()
        yield link.transfer(2000)

    env.process(body())
    env.run()
    assert link.window_throughput_bps() == pytest.approx(2e9)


def test_bandwidth_rejects_bad_args():
    env = Environment()
    with pytest.raises(ValueError):
        BandwidthServer(env, bytes_per_sec=0)
    link = BandwidthServer(env, bytes_per_sec=1e9)
    with pytest.raises(ValueError):
        link.service_time(-1)


def test_bandwidth_set_rate_rescales_backlog():
    env = Environment()
    link = BandwidthServer(env, bytes_per_sec=1e9)
    link.account(8000)                      # 8000 ns of backlog at 1 B/ns
    link.set_rate(2e9)                      # the queue now drains 2x as fast
    assert link.queueing_delay() == 4000
    assert link.account(2000) == 4000 + 1000


def test_bandwidth_set_rate_bumps_rate_epoch():
    env = Environment()
    link = BandwidthServer(env, bytes_per_sec=1e9)
    before = env.rate_epoch
    link.set_rate(5e8)
    assert env.rate_epoch == before + 1
    with pytest.raises(ValueError):
        link.set_rate(0)


def test_bandwidth_set_rate_with_empty_queue():
    env = Environment()
    link = BandwidthServer(env, bytes_per_sec=1e9)
    link.set_rate(2e9)
    assert link.queueing_delay() == 0
    assert link.account(2000) == 1000


def test_account_batch_bit_identical_to_sequential_accounts():
    env = Environment()
    a = BandwidthServer(env, bytes_per_sec=39.0625e9 / 3)  # awkward rate
    b = BandwidthServer(env, bytes_per_sec=39.0625e9 / 3)
    last = 0
    for _ in range(17):
        last = a.account(1499)
    assert b.account_batch(1499, 17) == last
    assert b.queueing_delay() == a.queueing_delay()
    assert b.bytes_total == a.bytes_total
    assert b.busy_ns == a.busy_ns


def test_account_many_bit_identical_to_sequential_accounts():
    env = Environment()
    a = BandwidthServer(env, bytes_per_sec=2.5e9)
    b = BandwidthServer(env, bytes_per_sec=2.5e9)
    sizes = [64, 1500, 0, 4096, 65536, 333, 64, 9000, 1, 127]
    last = 0
    for n in sizes:
        last = a.account(n)
    assert b.account_many(sizes) == last
    assert b.queueing_delay() == a.queueing_delay()
    assert b.bytes_total == a.bytes_total
    assert b.busy_ns == a.busy_ns


def test_account_batch_rejects_bad_args():
    env = Environment()
    link = BandwidthServer(env, bytes_per_sec=1e9)
    with pytest.raises(ValueError):
        link.account_batch(100, 0)
    with pytest.raises(ValueError):
        link.account_batch(-1, 4)


def test_spanned_charge_keeps_full_queue_backlog():
    """Steady-interval charges are real aggregate service: flows sharing
    the server must still queue behind them (fig13's colocated PageRank
    crossing the same interconnect as a coalesced netperf train)."""
    env = Environment()
    from repro.sim.fluid import FluidRegion
    link = BandwidthServer(env, bytes_per_sec=1e9)
    region = FluidRegion(env)
    with region.interval(1_000_000, flow_id=1):
        link.account_batch(1000, 100)       # 100 us of service
    assert link.queueing_delay() == 100_000


# ----------------------------------------------------- RateEstimator

def _estimator():
    from repro.sim.resources import RateEstimator
    env = Environment()
    return env, RateEstimator(env, bytes_per_sec=1e9)


def test_estimator_bucket_blend_outside_fluid_span():
    env, est = _estimator()
    est.update(10_000)
    env._now = est.bucket_ns // 2
    # Half a bucket at 10 KB over 10 us = 1.0 capped, weighted by 0.5.
    assert est.utilization() == pytest.approx(0.5)


def test_estimator_update_utilization_matches_pair():
    env, est1 = _estimator()
    from repro.sim.resources import RateEstimator
    est2 = RateEstimator(env, bytes_per_sec=1e9)
    for now in (0, 7_000, 21_000, 40_000, 40_001, 95_000):
        env._now = now
        est1.update(3000)
        want = est1.utilization()
        assert est2.update_utilization(3000) == want


def test_estimator_spanned_update_registers_reservation():
    env, est = _estimator()
    region_span = 1_000_000
    env.fluid_span_ns = region_span
    env.fluid_flow_id = 42
    est.update(500_000)                     # 0.5 GB/s over the span
    env.fluid_span_ns = 0
    env.fluid_flow_id = 0
    # Another flow's read sees the interval's average rate, not a
    # lump-sum bucket spike.
    assert est.utilization() == pytest.approx(0.5)
    # Same-block charges accumulate into the slot.
    env.fluid_span_ns = region_span
    env.fluid_flow_id = 42
    est.update(250_000)
    env.fluid_span_ns = 0
    assert est.utilization() == pytest.approx(0.75)


def test_estimator_reservation_excluded_for_own_flow_in_span():
    env, est = _estimator()
    env.fluid_span_ns = 1_000_000
    env.fluid_flow_id = 42
    est.update(500_000)
    # Still inside its own interval block: the flow's fresh reservation
    # is masked (exact reads the load factor before depositing its own
    # bytes), so it sees no self-inflation from this block.
    assert est.utilization() == pytest.approx(0.0)
    env.fluid_span_ns = 0
    env.fluid_flow_id = 0


def test_estimator_reservation_expires():
    env, est = _estimator()
    env.fluid_span_ns = 1_000_000
    env.fluid_flow_id = 42
    est.update(500_000)
    env.fluid_span_ns = 0
    env._now = 2_000_000                    # past the reservation's end
    assert est.utilization() == pytest.approx(0.0)
    assert est._pending == {}               # expired slot dropped


# -------------------------------------------- ProcessorSharingServer

def test_ps_server_single_flow_full_rate():
    env = Environment()
    dram = ProcessorSharingServer(env, bytes_per_sec=1e9)
    assert dram.account(1000) == 1000


def test_ps_server_shared_rate():
    env = Environment()
    dram = ProcessorSharingServer(env, bytes_per_sec=1e9)
    dram.enter()
    dram.enter()
    assert dram.account(1000) == 2000
    dram.leave()
    assert dram.account(1000) == 1000
    dram.leave()


def test_ps_server_leave_without_enter():
    env = Environment()
    dram = ProcessorSharingServer(env, bytes_per_sec=1e9)
    with pytest.raises(SimulationError):
        dram.leave()


def test_ps_server_tracks_bytes():
    env = Environment()
    dram = ProcessorSharingServer(env, bytes_per_sec=1e9)
    dram.account(123)
    dram.account(877)
    assert dram.bytes_total == 1000
