"""Unit tests for the fluid steady-interval coordinator."""

from repro.sim import Environment
from repro.sim.fluid import (
    MAX_INTERVAL_WALL_NS,
    WALL_SLICES,
    FluidRegion,
    fluid_region,
)


def test_region_cached_per_environment():
    env = Environment()
    region = fluid_region(env)
    assert fluid_region(env) is region
    assert fluid_region(Environment()) is not region


def test_token_folds_rate_epoch():
    env = Environment()
    region = FluidRegion(env)
    flow_token = ("core0", "pf0", 3)
    before = region.token(flow_token)
    env.rate_epoch += 1  # what BandwidthServer.set_rate does
    after = region.token(flow_token)
    assert before != after
    assert before[0] == after[0] == flow_token


def test_wall_cap_is_window_fraction():
    env = Environment()
    region = FluidRegion(env)
    window = WALL_SLICES * 1000
    assert region.wall_cap_ns(0, window) == 1000
    assert region.wall_cap_ns(window // 2, window) == 500
    # Degenerate windows still allow a 1 ns interval.
    assert region.wall_cap_ns(100, 100) == 1


def test_wall_cap_absolute_ceiling():
    """A huge nominal duration (fig13's sentinel I/O streams) must not
    unlock intervals that outrun the run's real horizon."""
    env = Environment()
    region = FluidRegion(env)
    assert region.wall_cap_ns(0, 4_000_000_000) == MAX_INTERVAL_WALL_NS


def test_interval_sets_and_restores_span():
    env = Environment()
    region = FluidRegion(env)
    assert env.fluid_span_ns == 0
    with region.interval(5000, flow_id=7):
        assert env.fluid_span_ns == 5000
        assert env.fluid_flow_id == 7
        with region.interval(100, flow_id=8):  # innermost span wins
            assert env.fluid_span_ns == 100
            assert env.fluid_flow_id == 8
        assert env.fluid_span_ns == 5000
        assert env.fluid_flow_id == 7
    assert env.fluid_span_ns == 0
    assert env.fluid_flow_id == 0


def test_interval_restores_span_on_exception():
    env = Environment()
    region = FluidRegion(env)
    try:
        with region.interval(5000):
            raise RuntimeError("charge failed")
    except RuntimeError:
        pass
    assert env.fluid_span_ns == 0


def test_counters():
    region = FluidRegion(Environment())
    region.register()
    region.grant(32)
    region.grant(16)
    region.invalidated()
    assert region.flows == 1
    assert region.steady_intervals == 2
    assert region.bursts_advanced == 48
    assert region.invalidations == 1
