"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    Environment,
    Event,
    Interrupt,
    ScheduleInPastError,
    SimulationError,
)
from repro.sim.errors import AlreadyTriggeredError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0


def test_timeout_advances_clock():
    env = Environment()

    def body():
        yield env.timeout(100)
        assert env.now == 100
        yield env.timeout(50)
        assert env.now == 150
        return "done"

    proc = env.process(body())
    assert env.run_process(proc) == "done"
    assert env.now == 150


def test_zero_delay_timeout_runs_same_time():
    env = Environment()
    seen = []

    def body():
        yield env.timeout(0)
        seen.append(env.now)

    env.process(body())
    env.run()
    assert seen == [0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ScheduleInPastError):
        env.timeout(-1)


def test_events_fire_in_schedule_order_at_same_time():
    env = Environment()
    order = []

    def make(tag):
        def body():
            yield env.timeout(10)
            order.append(tag)
        return body

    for tag in ("a", "b", "c"):
        env.process(make(tag)())
    env.run()
    assert order == ["a", "b", "c"]


def test_event_value_passed_to_process():
    env = Environment()
    event = env.event()
    got = []

    def waiter():
        value = yield event
        got.append(value)

    def firer():
        yield env.timeout(5)
        event.succeed(42)

    env.process(waiter())
    env.process(firer())
    env.run()
    assert got == [42]


def test_event_failure_raises_in_process():
    env = Environment()
    event = env.event()

    def waiter():
        with pytest.raises(ValueError):
            yield event
        return "handled"

    def firer():
        yield env.timeout(1)
        event.fail(ValueError("boom"))

    proc = env.process(waiter())
    env.process(firer())
    env.run()
    assert proc.value == "handled"


def test_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(AlreadyTriggeredError):
        event.succeed(2)
    with pytest.raises(AlreadyTriggeredError):
        event.fail(RuntimeError("x"))


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_process_waits_on_process():
    env = Environment()

    def inner():
        yield env.timeout(30)
        return 7

    def outer():
        result = yield env.process(inner())
        return result * 2

    assert env.run_process(env.process(outer())) == 14
    assert env.now == 30


def test_yield_already_processed_event():
    env = Environment()

    def body():
        done = env.timeout(0)
        yield env.timeout(10)   # `done` fires while we wait here
        value = yield done      # must not deadlock
        return value

    proc = env.process(body())
    env.run()
    assert proc.ok


def test_run_until_advances_clock_exactly():
    env = Environment()

    def body():
        yield env.timeout(100)

    env.process(body())
    env.run(until=500)
    assert env.now == 500


def test_run_until_does_not_run_future_events():
    env = Environment()
    seen = []

    def body():
        yield env.timeout(100)
        seen.append("early")
        yield env.timeout(1000)
        seen.append("late")

    env.process(body())
    env.run(until=200)
    assert seen == ["early"]
    env.run(until=2000)
    assert seen == ["early", "late"]


def test_run_until_in_past_rejected():
    env = Environment()
    env.run(until=100)
    with pytest.raises(ScheduleInPastError):
        env.run(until=50)


def test_all_of_collects_values():
    env = Environment()

    def body():
        events = [env.timeout(10, "a"), env.timeout(5, "b")]
        values = yield env.all_of(events)
        return values

    assert env.run_process(env.process(body())) == ["a", "b"]
    assert env.now == 10


def test_all_of_empty_fires_immediately():
    env = Environment()

    def body():
        values = yield env.all_of([])
        return values

    assert env.run_process(env.process(body())) == []


def test_any_of_returns_first():
    env = Environment()

    def body():
        fast = env.timeout(5, "fast")
        slow = env.timeout(50, "slow")
        winner = yield env.any_of([fast, slow])
        return winner.value

    assert env.run_process(env.process(body())) == "fast"
    assert env.now == 5


def test_any_of_requires_events():
    env = Environment()
    with pytest.raises(SimulationError):
        env.any_of([])


def test_interrupt_raises_in_target():
    env = Environment()
    caught = []

    def victim():
        try:
            yield env.timeout(1000)
        except Interrupt as intr:
            caught.append((env.now, intr.cause))

    def attacker(target):
        yield env.timeout(10)
        target.interrupt("migrate")

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    assert caught == [(10, "migrate")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_unhandled_interrupt_kills_process():
    env = Environment()

    def victim():
        yield env.timeout(1000)

    def attacker(target):
        yield env.timeout(10)
        target.interrupt()

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    assert target.triggered and not target.ok


def test_non_event_yield_is_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_deadlock_detection_in_run_process():
    env = Environment()

    def stuck():
        yield env.event()  # never triggered

    proc = env.process(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        env.run_process(proc)


def test_step_on_empty_queue_is_error():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_value_before_trigger_is_error():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_peek_returns_next_timestamp():
    env = Environment()
    assert env.peek() is None
    env.timeout(25)
    assert env.peek() == 25
