"""The invariant catalogue: passes on real runs, trips on tampered ones."""

import copy

import pytest

from repro.fuzz.case import FuzzCase
from repro.fuzz.invariants import (ALL_INVARIANTS, DEFAULT_INVARIANTS,
                                   INVARIANTS, check, needs_adaptive_run,
                                   validate_names)
from repro.fuzz.runner import execute


def make_case(**overrides):
    data = {
        "case_id": "inv-test", "seed": 42, "config": "ioctopus",
        "workload": "tcp_stream",
        "params": {"message_bytes": 4096, "direction": "rx"},
        "duration_ns": 1_000_000, "faults": [],
    }
    data.update(overrides)
    return FuzzCase.from_dict(data)


@pytest.fixture(scope="module")
def clean_run():
    case = make_case()
    return case.to_dict(), execute(case)


def test_validate_names_rejects_unknown():
    with pytest.raises(ValueError):
        validate_names(["conservation", "vibes"])
    validate_names(list(ALL_INVARIANTS))


def test_clean_run_satisfies_every_checker(clean_run):
    case, obs = clean_run
    assert obs["outcome"] == "ok"
    assert check(case, obs, list(INVARIANTS)) == []


def test_conservation_trips_on_ledger_tamper(clean_run):
    case, obs = clean_run
    bad = copy.deepcopy(obs)
    bad["server"]["rx_bytes"] += 1
    violations = check(case, bad, ["conservation"])
    assert violations
    assert all(v["invariant"] == "conservation" for v in violations)


def test_conservation_trips_on_wire_identity_tamper(clean_run):
    case, obs = clean_run
    bad = copy.deepcopy(obs)
    bad["wire"]["retransmits"] += 3
    assert check(case, bad, ["conservation"])


def test_drained_trips_on_leaked_entries(clean_run):
    case, obs = clean_run
    bad = copy.deepcopy(obs)
    bad["server"]["rx_outstanding"] = 5
    violations = check(case, bad, ["drained"])
    assert violations and violations[0]["invariant"] == "drained"


def test_no_reorder_trips_on_nonzero_residual(clean_run):
    case, obs = clean_run
    bad = copy.deepcopy(obs)
    bad["trace"]["residuals"] = [0, 7, 0]
    violations = check(case, bad, ["no_reorder"])
    assert violations and "7" in violations[0]["detail"]


def test_obs_consistency_trips_on_counter_drift(clean_run):
    case, obs = clean_run
    bad = copy.deepcopy(obs)
    bad["drivers"]["failovers"] += 1
    violations = check(case, bad, ["obs_consistency"])
    assert violations and "failover" in violations[0]["detail"]


def test_crash_skips_end_state_checks(clean_run):
    case, obs = clean_run
    crashed = copy.deepcopy(obs)
    crashed["outcome"] = "crashed"
    crashed["server"]["rx_bytes"] += 999   # would trip when not crashed
    crashed["server"]["rx_outstanding"] = 9
    assert check(case, crashed, ["conservation", "drained"]) == []


def test_mutation_smoke_fires_on_pf_fault():
    case = make_case(faults=[{"target": "nic", "kind": "pf_down",
                              "at_ns": 100_000, "duration_ns": 50_000,
                              "pf_id": 1}])
    obs = execute(case)
    assert obs["outcome"] == "ok"   # octoNIC fails over, no crash
    assert check(case.to_dict(), obs, ["mutation_smoke"])
    # The default selection never includes the deliberately-broken one.
    assert "mutation_smoke" not in DEFAULT_INVARIANTS


def test_needs_adaptive_run_gates_on_fault_kinds(clean_run):
    case, obs = clean_run
    assert needs_adaptive_run(case, obs)

    perf_only = dict(case, faults=[
        {"target": "nic", "kind": "wire_loss", "at_ns": 0,
         "duration_ns": 1000, "loss_probability": 0.01,
         "corrupt_probability": 0.0}])
    assert needs_adaptive_run(perf_only, obs)

    topology = dict(case, faults=[
        {"target": "nic", "kind": "pf_down", "at_ns": 0,
         "duration_ns": 1000, "pf_id": 0}])
    assert not needs_adaptive_run(topology, obs)

    crashed = dict(obs, outcome="crashed")
    assert not needs_adaptive_run(case, crashed)
