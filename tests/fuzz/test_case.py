"""The generator: determinism, grammar bounds, serialization."""

import pytest

from repro.fuzz.case import (CONFIGS, DURATIONS_NS, MAX_FAULTS,
                             SSD_FAULT_KINDS, WORKLOADS, FuzzCase,
                             generate_case)


def test_generation_is_deterministic():
    for index in range(20):
        assert (generate_case(0, index).to_dict()
                == generate_case(0, index).to_dict())


def test_cases_are_independent_streams():
    # Case i's content must not depend on whether other cases were
    # generated — that's what keeps corpus entries replayable.
    alone = generate_case(3, 7).to_dict()
    _ = [generate_case(3, i) for i in range(7)]
    assert generate_case(3, 7).to_dict() == alone


def test_different_seeds_differ():
    a = [generate_case(0, i).to_dict() for i in range(10)]
    b = [generate_case(1, i).to_dict() for i in range(10)]
    assert a != b


def test_round_trip_through_dict():
    for index in range(20):
        case = generate_case(0, index)
        assert FuzzCase.from_dict(case.to_dict()).to_dict() == case.to_dict()


def test_grammar_bounds_hold_over_many_cases():
    for index in range(60):
        case = generate_case(0, index)
        assert case.config in CONFIGS
        assert case.workload in WORKLOADS
        assert case.duration_ns in DURATIONS_NS
        assert len(case.faults) <= MAX_FAULTS
        for fault in case.faults:
            assert 0 <= fault["at_ns"] <= case.duration_ns * 0.8
            assert 1 <= fault["duration_ns"] <= case.duration_ns
            if fault["target"] == "ssd":
                assert case.has_nvme
                assert fault["kind"] in SSD_FAULT_KINDS
                if case.config != "ioctopus" and "pf_id" in fault:
                    assert fault["pf_id"] == 0


def test_fault_plan_splits_by_target():
    case = FuzzCase(
        case_id="t", seed=0, config="ioctopus", workload="colocated",
        params={"message_bytes": 4096, "block_bytes": 32768, "iodepth": 8},
        duration_ns=1_000_000,
        faults=[
            {"target": "nic", "kind": "pf_down", "at_ns": 10,
             "duration_ns": 100, "pf_id": 0},
            {"target": "ssd", "kind": "pcie_degrade", "at_ns": 20,
             "duration_ns": 100, "pf_id": 1, "lanes": 2},
        ])
    assert [s.kind for s in case.fault_plan("nic")] == ["pf_down"]
    assert [s.kind for s in case.fault_plan("ssd")] == ["pcie_degrade"]


@pytest.mark.parametrize("patch", [
    {"config": "mystery"},
    {"workload": "crypto_mining"},
    {"duration_ns": 10},
    {"faults": [{"kind": "pf_down", "at_ns": 0, "duration_ns": 1,
                 "pf_id": 0}]},                      # no target
    {"faults": [{"target": "nic", "kind": "pf_down", "at_ns": 0,
                 "duration_ns": 1}]},                # pf fault, no pf_id
    {"faults": [{"target": "nic", "kind": "pcie_degrade", "at_ns": 0,
                 "duration_ns": 1, "pf_id": 0}]},    # degrade, no lanes
])
def test_malformed_cases_rejected(patch):
    data = generate_case(0, 0).to_dict()
    data.update(patch)
    with pytest.raises(ValueError):
        FuzzCase.from_dict(data)


# ------------------------------------------------- component toggles

def test_component_toggles_draw_from_their_own_stream():
    # Stripping the toggles from a generated case must reproduce the
    # exact pre-toggle grammar: the draws live in a separate
    # ``components-{index}`` child stream, so config/workload/params/
    # faults are untouched by their introduction.
    for index in range(30):
        case = generate_case(11, index).to_dict()
        case.pop("components", None)
        again = generate_case(11, index).to_dict()
        again.pop("components", None)
        assert case == again


def test_some_cases_carry_off_toggles_all_fault_safe():
    from repro.components import fault_safe_component_names
    safe = set(fault_safe_component_names())
    seen = {}
    for index in range(80):
        for name, enabled in generate_case(0, index).components.items():
            assert name in safe
            assert enabled is False
            seen[name] = enabled
    assert seen  # the axis actually fires at 15% per component


def test_component_toggle_validation():
    base = generate_case(0, 0).to_dict()
    for components in ({"no_reorder_resteer": False},   # not fault-safe
                       {"mystery_knob": False},         # unknown
                       {"ddio": True}):                 # on-toggle
        data = dict(base, components=components)
        with pytest.raises(ValueError):
            FuzzCase.from_dict(data)


def test_components_key_omitted_when_empty_and_round_trips():
    case = generate_case(0, 0)
    bare = FuzzCase.from_dict(dict(case.to_dict(), components={}))
    assert "components" not in bare.to_dict()
    toggled = FuzzCase.from_dict(dict(case.to_dict(),
                                      components={"ddio": False}))
    assert toggled.to_dict()["components"] == {"ddio": False}
    assert FuzzCase.from_dict(toggled.to_dict()).components == \
        {"ddio": False}
    assert " -ddio" in toggled.describe()


def test_fleet_cases_reject_component_toggles():
    from repro.fuzz.case import generate_fleet_case
    fleet = generate_fleet_case(0, 0).to_dict()
    fleet["components"] = {"ddio": False}
    with pytest.raises(ValueError):
        FuzzCase.from_dict(fleet)
