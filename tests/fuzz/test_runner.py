"""The case runner: determinism, crash tolerance, agreement gating."""

import copy

import pytest

from repro.fuzz.case import FuzzCase
from repro.fuzz.runner import (MIN_AGREEMENT_RECORDS, _check_agreement,
                               execute, fingerprint, run_case)


def make_case(**overrides):
    data = {
        "case_id": "runner-test", "seed": 9, "config": "ioctopus",
        "workload": "tcp_stream",
        "params": {"message_bytes": 4096, "direction": "rx"},
        "duration_ns": 1_000_000, "faults": [],
    }
    data.update(overrides)
    return FuzzCase.from_dict(data)


def crash_case():
    # Standard firmware, serving PF dies mid-run: the workload's next
    # DMA raises DeviceGoneError, which the runner reports as a crash.
    return make_case(config="local", faults=[
        {"target": "nic", "kind": "pf_down", "at_ns": 200_000,
         "duration_ns": 100_000, "pf_id": 0}])


def test_execute_is_bit_identical():
    case = make_case()
    assert fingerprint(execute(case)) == fingerprint(execute(case))


def test_observation_shape():
    obs = execute(make_case())
    for key in ("outcome", "wire", "server", "client", "drivers",
                "faults", "trace", "metrics", "metrics_records", "nvme"):
        assert key in obs
    assert obs["outcome"] == "ok"
    assert obs["nvme"] is None            # tcp_stream has no SSD side
    assert obs["metrics"]["stream_gbps"] > 0
    assert obs["metrics_records"]["stream_gbps"] > 0


def test_run_case_clean():
    result = run_case(make_case().to_dict())
    assert result["outcome"] == "ok"
    assert result["violations"] == []
    assert result["fingerprint"]


def test_run_case_tolerates_legitimate_crash():
    result = run_case(crash_case().to_dict())
    assert result["outcome"] == "crashed"
    assert "DeviceGoneError" in result["error"]
    # A crash on standard firmware is the *expected* contrast with the
    # octoNIC, not an invariant violation — and it still replays.
    assert result["violations"] == []


def test_crash_is_deterministic_too():
    a = execute(crash_case())
    b = execute(crash_case())
    assert a["outcome"] == "crashed"
    assert fingerprint(a) == fingerprint(b)


# ---------------------------------------------------- agreement gating

def agreement_obs(**overrides):
    obs = {
        "outcome": "ok",
        "server": {"rx_bytes": 10_000_000, "tx_bytes": 5_000_000},
        "nvme": None,
        "metrics": {"stream_gbps": 10.0},
        "metrics_records": {"stream_gbps": MIN_AGREEMENT_RECORDS},
    }
    for key, value in overrides.items():
        if isinstance(obs.get(key), dict) and isinstance(value, dict):
            obs[key] = {**obs[key], **value}
        else:
            obs[key] = value
    return obs


def test_agreement_passes_when_close():
    exact = agreement_obs()
    adaptive = agreement_obs(metrics={"stream_gbps": 10.5})
    assert _check_agreement(exact, adaptive, rel=0.1) == []


def test_agreement_trips_on_metric_divergence():
    exact = agreement_obs()
    adaptive = agreement_obs(metrics={"stream_gbps": 15.0})
    violations = _check_agreement(exact, adaptive, rel=0.1)
    assert violations and "stream_gbps" in violations[0]["detail"]


def test_agreement_skips_underfilled_meters():
    # With too few meter records the two modes' window alignment
    # quantises differently by design — the rate is not comparable.
    exact = agreement_obs(
        metrics_records={"stream_gbps": MIN_AGREEMENT_RECORDS - 1})
    adaptive = agreement_obs(metrics={"stream_gbps": 15.0})
    assert _check_agreement(exact, adaptive, rel=0.1) == []


def test_agreement_still_holds_ledgers_when_meters_skip():
    exact = agreement_obs(
        metrics_records={"stream_gbps": MIN_AGREEMENT_RECORDS - 1})
    adaptive = agreement_obs(server={"rx_bytes": 7_000_000},
                             metrics={"stream_gbps": 15.0})
    violations = _check_agreement(exact, adaptive, rel=0.1)
    assert violations and "rx bytes" in violations[0]["detail"]


def test_agreement_allows_end_of_run_train_truncation():
    # The horizon can cut adaptive mode one coalesced train short.
    exact = agreement_obs()
    adaptive = agreement_obs(
        server={"rx_bytes": 10_000_000 - 64 * 1024})
    assert _check_agreement(exact, adaptive, rel=0.1) == []


def test_agreement_trips_on_outcome_mismatch():
    exact = agreement_obs()
    adaptive = agreement_obs(outcome="crashed")
    violations = _check_agreement(exact, adaptive, rel=0.1)
    assert violations and "outcome differs" in violations[0]["detail"]


def test_agreement_invariant_end_to_end_on_real_case():
    # A perf-only fault keeps the case eligible for the adaptive
    # comparison; the full run_case path must come back clean.
    case = make_case(faults=[
        {"target": "nic", "kind": "wire_loss", "at_ns": 100_000,
         "duration_ns": 200_000, "loss_probability": 0.01,
         "corrupt_probability": 0.001}])
    result = run_case(case.to_dict())
    assert result["violations"] == []
