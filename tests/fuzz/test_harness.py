"""Campaign driver + CLI: end-to-end fuzz runs and exit codes."""

import pytest

from repro.experiments.cli import main as top_main
from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.corpus import load_corpus
from repro.fuzz.harness import fuzz


def test_small_campaign_is_clean():
    summary = fuzz(master_seed=0, cases=6)
    assert summary["cases_run"] == 6
    assert summary["failures"] == 0
    assert summary["repros"] == []
    assert not summary["truncated"]
    assert len(summary["results"]) == 6


def test_campaign_summaries_are_reproducible():
    def strip(summary):
        return [(r["case"]["case_id"], r["outcome"], r["fingerprint"],
                 r["violations"]) for r in summary["results"]]
    assert strip(fuzz(master_seed=2, cases=5)) == \
        strip(fuzz(master_seed=2, cases=5))


def test_mutation_campaign_catches_shrinks_and_serializes(tmp_path):
    invariants = ["conservation", "replay", "mutation_smoke"]
    summary = fuzz(master_seed=0, cases=10, invariants=invariants,
                   corpus_dir=str(tmp_path))
    assert summary["failures"] > 0
    assert summary["repros"]
    for repro in summary["repros"]:
        assert repro["violations"] == ["mutation_smoke"]
        assert len(repro["case"]["faults"]) <= 2
        assert repro["case"]["case_id"].endswith("-min")
    entries = load_corpus(str(tmp_path))
    assert len(entries) == len(summary["repros"])


def test_unknown_invariant_rejected():
    with pytest.raises(ValueError):
        fuzz(cases=1, invariants=["conservation", "nonsense"])


def test_time_budget_truncates():
    summary = fuzz(master_seed=0, cases=200, time_budget_s=1e-9)
    assert summary["truncated"]
    assert summary["cases_run"] < 200


# ----------------------------------------------------------------- CLI

def test_cli_list_invariants(capsys):
    assert fuzz_main(["--list-invariants"]) == 0
    out = capsys.readouterr().out
    assert "conservation" in out and "mutation_smoke" in out


def test_cli_clean_run_exits_zero(capsys):
    assert fuzz_main(["--seed", "0", "--cases", "4"]) == 0
    assert "0 invariant failures" in capsys.readouterr().out


def test_cli_mutation_run_exits_one(tmp_path, capsys):
    code = fuzz_main(["--seed", "0", "--cases", "10", "--mutate",
                      "--corpus-dir", str(tmp_path)])
    assert code == 1
    assert "repro" in capsys.readouterr().out
    assert load_corpus(str(tmp_path))


def test_cli_replay_corpus_exit_codes(tmp_path, capsys):
    fuzz_main(["--seed", "0", "--cases", "10", "--mutate",
               "--corpus-dir", str(tmp_path)])
    capsys.readouterr()
    assert fuzz_main(["--replay-corpus", str(tmp_path)]) == 0
    assert "0 mismatched" in capsys.readouterr().out


def test_cli_rejects_bad_invariant_selection():
    with pytest.raises(ValueError):
        fuzz_main(["--cases", "1", "--invariants", "conservation,nope"])


def test_top_level_cli_dispatches_fuzz(capsys):
    assert top_main(["fuzz", "--list-invariants"]) == 0
    assert "conservation" in capsys.readouterr().out
