"""Fleet topology cases in the fuzzer: grammar, stream isolation,
execution, shrinking, campaign interleave."""

import pytest

from repro.fuzz.case import (CONFIGS, FLEET_CONNECTIONS, FLEET_DURATIONS_NS,
                             FLEET_SERVERS, FuzzCase, generate_case,
                             generate_fleet_case)
from repro.fuzz.harness import fuzz
from repro.fuzz.runner import run_case, run_fleet_case
from repro.fuzz.shrink import candidates


def test_fleet_generation_is_deterministic():
    for index in range(8):
        assert (generate_fleet_case(0, index).to_dict()
                == generate_fleet_case(0, index).to_dict())


def test_fleet_cases_leave_regular_streams_untouched():
    # The committed corpus pins generate_case's streams; interleaving
    # fleet cases must not perturb them.
    alone = [generate_case(0, i).to_dict() for i in range(10)]
    _ = [generate_fleet_case(0, i) for i in range(10)]
    assert [generate_case(0, i).to_dict() for i in range(10)] == alone


def test_fleet_grammar_bounds_hold():
    from repro.cluster.spec import FleetSpec
    for index in range(30):
        case = generate_fleet_case(0, index)
        assert case.workload == "fleet"
        assert case.faults == []
        assert case.config in CONFIGS
        spec = FleetSpec.from_dict(case.params)
        assert spec.servers in FLEET_SERVERS
        assert spec.connections in FLEET_CONNECTIONS
        assert spec.duration_ns in FLEET_DURATIONS_NS
        for event in (spec.server_down, spec.pf_flap):
            if event is not None:
                assert 0 <= event[0] < spec.servers
                assert (spec.duration_ns // 4 <= event[1]
                        <= (spec.duration_ns * 3) // 4)


def test_fleet_case_round_trips_and_validates():
    case = generate_fleet_case(3, 4)
    data = case.to_dict()
    assert FuzzCase.from_dict(data).to_dict() == data

    broken = dict(data, duration_ns=data["duration_ns"] * 2)
    with pytest.raises(ValueError):
        FuzzCase.from_dict(broken)
    with_faults = dict(data, faults=[
        {"target": "nic", "kind": "pf_down", "at_ns": 0,
         "duration_ns": 1, "pf_id": 0}])
    with pytest.raises(ValueError):
        FuzzCase.from_dict(with_faults)


def test_fleet_case_runs_clean_through_run_case():
    case = generate_fleet_case(0, 4).to_dict()
    result = run_case(case)
    assert result["outcome"] == "ok"
    assert result["violations"] == []
    assert result["fingerprint"]
    assert result["metrics"]["served"] > 0
    # Dispatch and direct call are the same path.
    direct = run_fleet_case(case)
    assert direct["fingerprint"] == result["fingerprint"]


def test_fleet_shrink_candidates_stay_valid():
    case = generate_fleet_case(1, 9).to_dict()
    cands = list(candidates(case))
    assert cands, "a fresh fleet case must have simplification steps"
    for cand in cands:
        # Every candidate must still parse as a valid fleet case.
        FuzzCase.from_dict(cand)
        assert cand["workload"] == "fleet"


def test_fleet_shrink_can_drop_the_failure_scenario():
    base = generate_fleet_case(0, 0).to_dict()
    base["params"]["server_down"] = [0, base["duration_ns"] // 2]
    cands = list(candidates(base))
    assert any(c["params"]["server_down"] is None for c in cands)


def test_campaign_interleaves_fleet_cases():
    summary = fuzz(master_seed=0, cases=5, invariants=["conservation"])
    workloads = [r["case"]["workload"] for r in summary["results"]]
    assert workloads.count("fleet") == 1
    assert workloads[4] == "fleet"
    assert summary["failures"] == 0

    solo = fuzz(master_seed=0, cases=5, invariants=["conservation"],
                fleet_every=0)
    assert all(r["case"]["workload"] != "fleet"
               for r in solo["results"])


def test_mutation_mode_skips_fleet_cases():
    summary = fuzz(master_seed=0, cases=5,
                   invariants=["conservation", "mutation_smoke"],
                   shrink_budget=1)
    assert all(r["case"]["workload"] != "fleet"
               for r in summary["results"])
