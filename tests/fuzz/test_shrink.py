"""The shrinker: candidates stay well-formed, repros shrink to minimal."""

from repro.fuzz.case import FuzzCase, generate_case
from repro.fuzz.invariants import DEFAULT_INVARIANTS
from repro.fuzz.runner import run_case
from repro.fuzz.shrink import MIN_DURATION_NS, candidates, shrink


def multi_fault_case():
    return {
        "case_id": "shrink-test", "seed": 5, "config": "ioctopus",
        "workload": "colocated",
        "params": {"message_bytes": 4096, "block_bytes": 32768,
                   "iodepth": 8},
        "duration_ns": 2_000_000,
        "faults": [
            {"target": "nic", "kind": "pf_down", "at_ns": 200_000,
             "duration_ns": 100_000, "pf_id": 1},
            {"target": "ssd", "kind": "pcie_degrade", "at_ns": 300_000,
             "duration_ns": 400_000, "pf_id": 0, "lanes": 2},
            {"target": "nic", "kind": "wire_loss", "at_ns": 500_000,
             "duration_ns": 100_000, "loss_probability": 0.01},
        ],
    }


def test_candidates_are_all_valid_cases():
    seen = 0
    for cand in candidates(multi_fault_case()):
        FuzzCase.from_dict(cand)   # raises on any malformed candidate
        seen += 1
    assert seen >= 6   # 3 fault-drops + duration halvings + workload + ...


def test_candidates_simplify_monotonically():
    case = multi_fault_case()
    for cand in candidates(case):
        assert (
            len(cand["faults"]) < len(case["faults"])
            or sum(f["duration_ns"] for f in cand["faults"])
            < sum(f["duration_ns"] for f in case["faults"])
            or cand["duration_ns"] < case["duration_ns"]
            or cand["workload"] != case["workload"]
            or cand["params"] != case["params"])


def test_workload_simplification_drops_ssd_faults():
    simpler = [c for c in candidates(multi_fault_case())
               if c["workload"] == "tcp_stream"]
    assert simpler
    assert all(f["target"] == "nic" for f in simpler[0]["faults"])


def test_duration_halving_clips_faults():
    case = multi_fault_case()
    case["duration_ns"] = MIN_DURATION_NS * 4
    halved = [c for c in candidates(case)
              if c["duration_ns"] == MIN_DURATION_NS * 2]
    assert halved
    for fault in halved[0]["faults"]:
        assert fault["at_ns"] < MIN_DURATION_NS * 2
        assert fault["duration_ns"] <= MIN_DURATION_NS * 2


def test_mutation_failure_shrinks_to_minimal_repro():
    # The acceptance bar: seed a case whose pf-level faults trip the
    # deliberately-broken invariant, and the shrinker must reduce it to
    # <= 2 faults while it still fails for the same reason.
    invariants = list(DEFAULT_INVARIANTS) + ["mutation_smoke"]
    case = multi_fault_case()
    first = run_case(case, invariants=invariants)
    assert {v["invariant"] for v in first["violations"]} == \
        {"mutation_smoke"}

    minimal, final, used = shrink(case, {"mutation_smoke"}, invariants)
    assert len(minimal["faults"]) <= 2
    assert minimal["case_id"] == "shrink-test-min"
    assert {v["invariant"] for v in final["violations"]} == \
        {"mutation_smoke"}
    assert 0 < used <= 48
    # The surviving fault must still be pf-level — shrinking never
    # swaps the failure for a different one.
    assert all(f["kind"] in ("pf_down", "pcie_link_down")
               for f in minimal["faults"])


def test_shrink_respects_budget():
    invariants = list(DEFAULT_INVARIANTS) + ["mutation_smoke"]
    minimal, final, used = shrink(multi_fault_case(), {"mutation_smoke"},
                                  invariants, budget=3)
    assert used <= 4   # budget exhausts, plus one final confirming run
    assert final["violations"]


def test_generated_cases_shrink_too():
    # End-to-end on a generator-produced case known to fire a pf fault.
    invariants = list(DEFAULT_INVARIANTS) + ["mutation_smoke"]
    for index in range(30):
        case = generate_case(0, index).to_dict()
        result = run_case(case, invariants=invariants)
        names = {v["invariant"] for v in result["violations"]}
        if "mutation_smoke" in names:
            minimal, final, _ = shrink(case, {"mutation_smoke"},
                                       invariants)
            assert len(minimal["faults"]) <= 2
            return
    raise AssertionError("no seed-0 case fired a pf-level fault")


def test_component_reenable_candidates_come_first():
    case = multi_fault_case()
    case["components"] = {"ddio": False, "xps": False}
    cands = list(candidates(case))
    # The first candidates re-enable one toggle each, leaving the rest
    # of the case untouched.
    assert cands[0]["components"] == {"xps": False}
    assert cands[1]["components"] == {"ddio": False}
    for cand in cands[:2]:
        assert cand["faults"] == case["faults"]
        FuzzCase.from_dict(cand)
    # A single remaining toggle shrinks to no components key at all.
    case["components"] = {"ddio": False}
    first = next(iter(candidates(case)))
    assert "components" not in first
