"""The corpus: save/load/replay round trips, and the committed entries.

``tests/corpus/`` holds committed determinism pins: shrunk, diverse
cases recorded with their violation set (empty = the case passes) and
the exact-mode observation fingerprint.  Replaying them is the fuzz
harness's regression suite — a changed fingerprint is a behaviour
change someone must explain, same policy as the goldens.
"""

import json
import os

from repro.fuzz.case import FuzzCase
from repro.fuzz.corpus import (entry_path, load_corpus, replay_corpus,
                               replay_entry, save_entry)
from repro.fuzz.runner import run_case

COMMITTED = os.path.join(os.path.dirname(__file__), "..", "corpus")


def small_entry():
    case = {
        "case_id": "corpus-test", "seed": 3, "config": "ioctopus",
        "workload": "pktgen", "params": {"packet_bytes": 256},
        "duration_ns": 500_000, "faults": [],
    }
    result = run_case(case, invariants=["conservation", "replay"])
    return {"case": case, "invariants": ["conservation", "replay"],
            "violations": [], "fingerprint": result["fingerprint"],
            "found": {"master_seed": 3}}


def test_save_load_round_trip(tmp_path):
    entry = small_entry()
    path = save_entry(str(tmp_path), entry)
    assert path == entry_path(str(tmp_path), "corpus-test")
    loaded = load_corpus(str(tmp_path))
    assert len(loaded) == 1
    assert loaded[0]["case"] == entry["case"]
    assert loaded[0]["fingerprint"] == entry["fingerprint"]


def test_entry_path_sanitizes_case_ids(tmp_path):
    path = entry_path(str(tmp_path), "we/ird id!")
    assert os.path.basename(path) == "we_ird_id_.json"


def test_replay_matches_recorded_entry(tmp_path):
    entry = small_entry()
    outcome = replay_entry(entry)
    assert outcome["ok"], outcome["mismatches"]


def test_replay_detects_fingerprint_drift():
    entry = small_entry()
    entry["fingerprint"] = "0" * 64
    outcome = replay_entry(entry)
    assert not outcome["ok"]
    assert any("fingerprint changed" in m for m in outcome["mismatches"])


def test_replay_detects_violation_drift():
    entry = small_entry()
    entry["violations"] = ["no_reorder"]
    outcome = replay_entry(entry)
    assert not outcome["ok"]
    assert any("violations changed" in m for m in outcome["mismatches"])


def test_replay_corpus_summarises(tmp_path):
    save_entry(str(tmp_path), small_entry())
    summary = replay_corpus(str(tmp_path))
    assert summary["total"] == 1
    assert summary["failed"] == 0


def test_missing_corpus_dir_is_empty():
    assert load_corpus("/nonexistent/corpus/dir") == []


# ------------------------------------------------ the committed corpus

def test_committed_corpus_exists_and_is_well_formed():
    entries = load_corpus(COMMITTED)
    assert len(entries) >= 5
    kinds, workloads = set(), set()
    for entry in entries:
        case = FuzzCase.from_dict(entry["case"])   # full validation
        assert entry["fingerprint"]
        assert isinstance(entry["violations"], list)
        workloads.add(case.workload)
        kinds.update(case.fault_kinds())
    # The pins must stay diverse: several fault kinds and workloads.
    assert len(kinds) >= 4
    assert len(workloads) >= 3


def test_committed_corpus_replays_bit_identically():
    summary = replay_corpus(COMMITTED)
    assert summary["total"] >= 5
    failed = [r for r in summary["replays"] if not r["ok"]]
    assert not failed, failed


def test_committed_corpus_files_are_canonical_json():
    for name in sorted(os.listdir(COMMITTED)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(COMMITTED, name)
        with open(path) as handle:
            text = handle.read()
        entry = json.loads(text)
        assert text == json.dumps(entry, indent=2, sort_keys=True) + "\n"
