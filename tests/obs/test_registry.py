"""MetricsRegistry and instrument semantics."""

import pytest

from repro.obs import NOOP, MetricsRegistry, NoopInstrument


def test_counter_increments_and_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("x.requests", help="requests")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_read_time_binding():
    reg = MetricsRegistry()
    state = {"v": 1}
    g = reg.gauge("x.level", fn=lambda: state["v"])
    assert g.value == 1
    state["v"] = 7          # no instrument call on the "hot path"
    assert g.value == 7
    with pytest.raises(ValueError):
        g.set(3.0)          # bound gauges are read-only


def test_gauge_settable_when_unbound():
    reg = MetricsRegistry()
    g = reg.gauge("x.manual")
    g.set(2.5)
    assert g.value == 2.5


def test_histogram_summary_and_percentiles():
    reg = MetricsRegistry()
    h = reg.histogram("x.lat")
    for v in (100, 200, 300, 400):
        h.observe(v)
    assert h.count == 4
    assert h.sum == 1000
    assert h.percentile(50) == 200
    summary = h.summary()
    assert summary["count"] == 4
    assert summary["min"] == 100
    assert summary["max"] == 400
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_empty():
    reg = MetricsRegistry()
    h = reg.histogram("x.empty")
    assert h.summary()["count"] == 0
    with pytest.raises(ValueError):
        h.percentile(50)


def test_duplicate_name_rejected():
    reg = MetricsRegistry()
    reg.counter("x.a")
    with pytest.raises(ValueError, match="x.a"):
        reg.gauge("x.a")


def test_disabled_registry_returns_shared_noop():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("x.a")
    g = reg.gauge("x.b", fn=lambda: 1.0)
    h = reg.histogram("x.c")
    assert c is NOOP and g is NOOP and h is NOOP
    assert isinstance(c, NoopInstrument)
    # No-ops are callable but record nothing, and nothing registers.
    c.inc()
    g.set(1.0)
    h.observe(5)
    assert reg.names() == []
    assert reg.collect() == {}


def test_collect_flattens_and_filters_detail():
    reg = MetricsRegistry()
    reg.counter("a.count").inc(3)
    reg.gauge("a.debug", fn=lambda: 9.0, detail=True)
    h = reg.histogram("a.lat")
    h.observe(10)
    flat = reg.collect(include_detail=True)
    assert flat["a.count"] == 3
    assert flat["a.debug"] == 9.0
    assert flat["a.lat.count"] == 1
    assert flat["a.lat.p50"] == 10
    curated = reg.collect(include_detail=False)
    assert "a.debug" not in curated
    assert "a.count" in curated


def test_namespace_prefixes_every_instrument():
    registry = MetricsRegistry(namespace="srv3")
    registry.counter("nic.doorbells")
    registry.gauge("qpi.util", lambda: 0.5)
    assert registry.names() == ["srv3.nic.doorbells", "srv3.qpi.util"]


def test_namespaced_registries_do_not_collide_when_absorbed():
    fleet = MetricsRegistry()
    for server in range(3):
        fleet.absorb({"nic.rx_bytes": 100 * server, "cpu.util": 0.1},
                     namespace=f"srv{server}")
    assert fleet.get("srv0.nic.rx_bytes").value == 0.0
    assert fleet.get("srv2.nic.rx_bytes").value == 200.0
    assert len(fleet.names()) == 6


def test_absorb_same_namespace_twice_collides():
    fleet = MetricsRegistry()
    fleet.absorb({"x": 1.0}, namespace="srv0")
    with pytest.raises(ValueError):
        fleet.absorb({"x": 2.0}, namespace="srv0")


def test_absorb_on_disabled_registry_is_noop():
    registry = MetricsRegistry(enabled=False)
    registry.absorb({"x": 1.0}, namespace="srv0")
    assert registry.instruments == {}
