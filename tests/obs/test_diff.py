"""Differential run analysis: delta decomposition, family-clamped NUDMA
attribution, inert thresholds, and the CLI round trip."""

import json

import pytest

from repro.obs.blame import run_blame_point
from repro.obs.diff import diff_reports, main, render_text

SHORT_NS = 2_000_000


def _report(e2e_mean, stages, p50=None, p99=None):
    """Minimal hand-built blame report for diff unit tests: stages is
    {name: (mean_ns, tail_mean_ns)}."""
    return {
        "e2e": {"mean_ns": e2e_mean,
                "p50_ns": int(p50 if p50 is not None else e2e_mean),
                "p99_ns": int(p99 if p99 is not None else e2e_mean)},
        "stages": [{"stage": name, "mean_ns": mean, "tail_mean_ns": tail}
                   for name, (mean, tail) in stages.items()],
        "conservation": {"ok": True},
    }


def test_diff_decomposes_the_mean_delta_exactly():
    a = _report(100.0, {"stack": (60.0, 60.0), "dma.local": (40.0, 40.0)})
    b = _report(130.0, {"stack": (60.0, 60.0), "dma.qpi": (70.0, 70.0)})
    diff = diff_reports(a, b)
    assert diff["e2e_delta"]["mean_ns"] == pytest.approx(30.0)
    assert sum(r["delta_mean_ns"]
               for r in diff["stages"]) == pytest.approx(30.0)
    assert sum(r["delta_mean_ns"]
               for r in diff["families"]) == pytest.approx(30.0)
    # dma.local -> dma.qpi relabel: only the +30 net excess is NUDMA.
    assert diff["nudma_delta_mean_ns"] == pytest.approx(30.0)
    assert diff["nudma_share"] == pytest.approx(1.0)


def test_family_clamp_nets_out_relabel_swaps():
    """An irq.local -> irq.qpi swap of nearly equal cost attributes only
    its few-ns net excess, not the gross +/- movement."""
    a = _report(1000.0, {"irq.local": (550.0, 550.0),
                         "app": (450.0, 450.0)})
    b = _report(1017.0, {"irq.qpi": (567.0, 567.0),
                         "app": (450.0, 450.0)})
    diff = diff_reports(a, b)
    irq = next(r for r in diff["families"] if r["family"] == "irq")
    assert irq["delta_mean_ns"] == pytest.approx(17.0)
    assert irq["nudma_mean_ns"] == pytest.approx(17.0)  # clamped, not 567
    assert diff["nudma_share"] == pytest.approx(1.0)


def test_inert_threshold_flags_noise_stages():
    a = _report(10_000.0, {"stack": (9_000.0, 9_000.0),
                           "app": (1_000.0, 1_000.0)})
    b = _report(10_001.0, {"stack": (9_001.0, 9_001.0),
                           "app": (1_000.0, 1_000.0)})
    diff = diff_reports(a, b)
    rows = {r["stage"]: r for r in diff["stages"]}
    assert rows["stack"]["inert"] and rows["app"]["inert"]
    assert "inert" in render_text(diff)


def test_counter_and_result_diffs_ride_along():
    a = _report(100.0, {"stack": (100.0, 100.0)})
    b = _report(100.0, {"stack": (100.0, 100.0)})
    a["counters"] = {"srv.qpi.util": 0.0, "srv.steady": 5.0}
    b["counters"] = {"srv.qpi.util": 0.8, "srv.steady": 5.0}
    a["result"] = {"mpps": 4.0}
    b["result"] = {"mpps": 3.0}
    diff = diff_reports(a, b)
    counters = {r["name"]: r for r in diff["counters"]}
    assert not counters["srv.qpi.util"]["inert"]
    assert counters["srv.steady"]["inert"]
    (mpps,) = diff["result_delta"]
    assert mpps["delta"] == pytest.approx(-1.0)


def test_ioctopus_vs_remote_attributes_delta_to_nudma_stages():
    """The acceptance criterion: >= 80% of the pktgen delta lands on
    QPI-transit and DDIO-miss/remote-DRAM stages."""
    a = run_blame_point("pktgen", "ioctopus", size=256,
                        duration_ns=SHORT_NS)
    b = run_blame_point("pktgen", "remote", size=256,
                        duration_ns=SHORT_NS)
    diff = diff_reports(a, b, "ioctopus", "remote")
    assert diff["conservation_ok"]
    assert diff["e2e_delta"]["mean_ns"] > 0
    assert diff["nudma_share"] >= 0.8
    assert diff["nudma_tail_share"] >= 0.8


def test_cli_diffs_two_saved_reports(tmp_path, capsys):
    report = run_blame_point("pktgen", "remote", size=256,
                             duration_ns=SHORT_NS)
    path_a = tmp_path / "a.json"
    path_b = tmp_path / "b.json"
    path_a.write_text(json.dumps(report))
    path_b.write_text(json.dumps(report))
    out = tmp_path / "diff.json"
    assert main(["--a", str(path_a), "--b", str(path_b),
                 "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "e2e mean" in text
    saved = json.loads(out.read_text())
    assert saved["e2e_delta"]["mean_ns"] == 0
    assert all(row["inert"] for row in saved["stages"])
