"""ObsSession end-to-end: attach, report, export — and the determinism
golden proving observability never changes simulated results."""

import json

import pytest

from repro.experiments.runners import run_pktgen, run_tcp_rr
from repro.obs import ObsSession

#: PR 2 exact-mode pktgen golden (tests/experiments/test_batching.py);
#: must hold bit-identically with a full ObsSession attached.
PKTGEN_GOLDEN = {
    "throughput_gbps": 6.214354823529412,
    "mpps": 3.0343529411764707,
    "membw_gbps": 9.34580705882353,
}


def run_point(obs=None):
    return run_pktgen("remote", 256, 10_000_000, seed=0,
                      accuracy="exact", obs=obs)


def test_exact_golden_unchanged_with_obs_enabled():
    obs = ObsSession(enabled=True, trace=True)
    assert run_point(obs) == PKTGEN_GOLDEN


def test_exact_golden_unchanged_with_obs_disabled():
    assert run_point(ObsSession(enabled=False)) == PKTGEN_GOLDEN


def test_rr_golden_unchanged_with_obs():
    baseline = run_tcp_rr("remote", "local", True, 1024, 5_000_000,
                          seed=0, accuracy="exact")
    obs = ObsSession(enabled=True, trace=True)
    traced = run_tcp_rr("remote", "local", True, 1024, 5_000_000,
                        seed=0, accuracy="exact", obs=obs)
    assert traced == baseline


def test_registry_reports_paper_metrics():
    obs = ObsSession(enabled=True)
    run_point(obs)
    flat = obs.collect(include_detail=False)
    # The §5.1 headline channels: QPI occupancy, DDIO hit rate,
    # per-PF queue depth.
    assert 0.0 < flat["srv.qpi.1to0.occupancy"] < 1.0
    assert "srv.node1.ddio.hit_rate" in flat
    assert flat["srv.nic.pf0.queue_depth_hwm"] > 0
    assert flat["srv.nic.pf0.tx_bytes"] > 0
    table = obs.utilization_table()
    assert "srv.qpi.1to0" in table and "occupancy" in table


def test_sampler_fills_series():
    obs = ObsSession(enabled=True, sample_interval_ns=1_000_000)
    run_point(obs)
    assert obs.sampler is not None
    assert obs.sampler.samples_taken >= 9
    series = obs.sampler.series["srv.qpi.1to0.util"]
    assert series.max() > 0.0


def test_flow_crosses_four_components():
    obs = ObsSession(enabled=True, trace=True)
    run_tcp_rr("remote", "local", True, 1024, 2_000_000,
               seed=0, accuracy="exact", obs=obs)
    doc = json.loads(obs.perfetto_json())
    events = doc["traceEvents"]
    tid_name = {e["tid"]: e["args"]["name"] for e in events
                if e.get("ph") == "M" and e.get("name") == "thread_name"}
    chains = {}
    for e in events:
        if e.get("cat") == "flow":
            chains.setdefault(e["id"], []).append(tid_name[e["tid"]])
    # At least one rx flow connects wire -> PF DMA -> IRQ -> stack -> app.
    rx = [c for c in chains.values() if any("irq" in s for s in c)]
    assert rx, "no rx flows traced"
    chain = rx[0]
    assert len(set(chain)) >= 4
    assert chain[0] == "wire"
    assert any("pf" in s for s in chain)
    assert chain[-1].endswith(".app")


def test_prometheus_dump_format():
    obs = ObsSession(enabled=True)
    run_point(obs)
    text = obs.prometheus()
    assert "# TYPE repro_srv_qpi_1to0_occupancy gauge" in text
    line = [ln for ln in text.splitlines()
            if ln.startswith("repro_srv_nic_pf0_tx_bytes ")][0]
    assert float(line.split()[-1]) > 0


def test_double_attach_rejected():
    obs = ObsSession(enabled=True)
    run_point(obs)
    with pytest.raises(ValueError, match="already attached"):
        run_point(obs)


def test_disabled_session_registers_nothing():
    obs = ObsSession(enabled=False)
    run_point(obs)
    assert obs.registry.instruments == {}
    assert obs.sampler is None
    assert obs.tracer is None


def test_prometheus_labels_stamped_on_every_sample():
    from repro.obs.export import to_prometheus
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("nic.rx_bytes").inc(7)
    hist = registry.histogram("lat")
    hist.observe(5.0)
    text = to_prometheus(registry, labels={"server": "3"})
    assert 'repro_nic_rx_bytes{server="3"} 7' in text
    assert 'repro_lat{server="3",quantile="0.5"}' in text
    assert 'repro_lat_count{server="3"} 1' in text
    # No labels -> the historical bare format.
    bare = to_prometheus(registry)
    assert "repro_nic_rx_bytes 7" in bare
