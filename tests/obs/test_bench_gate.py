"""The obs-overhead gate in the perf-regression harness."""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
if str(REPO / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO / "benchmarks"))

from perf.harness import (  # noqa: E402
    OBS_OVERHEAD_CEILING,
    bench_obs_pair,
    check_regression,
)


def report_with(overhead: float, obs_calls: int = 0,
                events_match: bool = True) -> dict:
    return {
        "obs": {
            "kind": "pktgen", "config": "remote",
            "off": {"events": 100, "wall_s": 1.0, "events_per_sec": 10000},
            "disabled": {
                "events": 100, "wall_s": 1.0,
                "events_per_sec": int(10000 * (1 - overhead)),
            },
            "enabled": {
                "events": 110, "wall_s": 1.1, "events_per_sec": 9500,
            },
            "disabled_overhead": overhead,
            "enabled_overhead": 0.05,
            "events_match": events_match,
            "disabled_obs_calls": obs_calls,
        },
    }


def test_gate_passes_when_disabled_leg_does_no_work():
    # Zero obs calls + identical event stream => structurally 0%
    # overhead; a noisy wall-clock ratio cannot fail the gate.
    report = report_with(OBS_OVERHEAD_CEILING * 3, obs_calls=0)
    assert check_regression(report, baseline={}) == []


def test_gate_fails_on_hot_path_obs_calls_over_ceiling():
    report = report_with(OBS_OVERHEAD_CEILING * 2, obs_calls=5000)
    failures = check_regression(report, baseline={})
    assert failures and "obs" in failures[0]


def test_gate_passes_hot_path_calls_within_ceiling():
    # The contract is <=2% events/sec, not zero calls.
    report = report_with(OBS_OVERHEAD_CEILING / 2, obs_calls=100)
    assert check_regression(report, baseline={}) == []


def test_gate_fails_on_event_stream_change():
    report = report_with(0.0, events_match=False)
    failures = check_regression(report, baseline={})
    assert failures and "event stream" in failures[0]


def test_gate_tolerates_reports_without_obs():
    # Old baselines and old reports predate the obs pair.
    assert check_regression({}, baseline={}) == []


def test_bench_obs_pair_disabled_leg_is_structurally_free():
    """off and disabled legs must simulate the identical event stream
    with zero calls into obs code; the enabled leg adds only sampler
    wakeups."""
    pair = bench_obs_pair(duration_ns=2_000_000, repeats=1)
    assert pair["disabled"]["events"] == pair["off"]["events"]
    assert pair["enabled"]["events"] > pair["off"]["events"]
    assert pair["events_match"] is True
    assert pair["disabled_obs_calls"] == 0
