"""Latency-blame attribution: conservation, tail blame, sampling,
train apportionment, fleet merge, and the fig09 breakdown."""

import pytest

from repro.cluster import FleetSpec, run_fleet
from repro.obs.blame import (BlameCollector, BlameDomain, build_report,
                             is_nudma_stage, render_text, run_blame_point,
                             stage_family)
from repro.sim.tracing import Tracer

#: Short simulated window for the tier sweeps (the CI smoke runs the
#: full quick points; these tests care about the invariant, not the
#: figures).
SHORT_NS = 2_000_000


def _stage_sum(report):
    return sum(row["total_ns"] for row in report["stages"])


# --------------------------------------------------------- conservation

@pytest.mark.parametrize("accuracy", ["exact", "adaptive", "fluid"])
def test_pktgen_blame_conserves_in_every_tier(accuracy):
    """fig08 point: per-stage raw sums equal end-to-end latency exactly
    even when trains seal once for K represented bursts."""
    report = run_blame_point("pktgen", "remote", size=256,
                             duration_ns=SHORT_NS, accuracy=accuracy)
    assert report["conservation"]["ok"], report["conservation"]["errors"]
    assert report["flows"] > 0
    assert _stage_sum(report) == report["e2e"]["total_ns"]


@pytest.mark.parametrize("accuracy", ["exact", "adaptive", "fluid"])
def test_rr_blame_conserves_in_every_tier(accuracy):
    """fig09 point: the latency path's flow decomposition (wire, DMA,
    doorbell, irq, stack, cq, app) sums to the RTT-derived latency."""
    report = run_blame_point("rr", "remote", size=64,
                             duration_ns=SHORT_NS,
                             client_config="remote", accuracy=accuracy)
    assert report["conservation"]["ok"], report["conservation"]["errors"]
    assert report["flows"] > 0
    assert _stage_sum(report) == report["e2e"]["total_ns"]


def test_exact_rr_stage_budgets_to_the_ns():
    report = run_blame_point("rr", "ioctopus", size=64,
                             duration_ns=SHORT_NS,
                             client_config="local")
    assert report["conservation"]["violations"] == 0
    # Shares are a decomposition of 1, and every per-stage p50 is a
    # plausible per-request budget (bounded by the end-to-end p99).
    assert sum(r["share"] for r in report["stages"]) == pytest.approx(1.0)
    for row in report["stages"]:
        assert 0 <= row["p50_ns"] <= report["e2e"]["max_ns"]
    blame = report["p99_blame"]
    assert blame["stage"] in {r["stage"] for r in report["stages"]}
    assert "p99 blame" in render_text(report)


# ------------------------------------------------- domain unit behavior

def test_stage_taxonomy_helpers():
    assert stage_family("dma.qpi") == "dma"
    assert stage_family("stack") == "stack"
    assert is_nudma_stage("dma.qpi") and is_nudma_stage("cq.miss")
    assert not is_nudma_stage("dma.local") and not is_nudma_stage("app")


def test_train_apportionment_keeps_raw_sums_unapportioned():
    domain = BlameDomain()
    domain.add({"stack": 640, "dma.qpi": 320}, 960, represented=4)
    assert domain.flows == 1
    assert domain.units == 4
    assert domain.total_ns == 960            # raw, unapportioned
    assert domain.stage_ns == {"stack": 640, "dma.qpi": 320}
    assert domain.e2e.count == 4             # 4 units at 240 ns each
    assert domain.e2e.percentile(50) == 240
    assert domain.stages["stack"].percentile(50) == 160


def test_tail_blame_names_the_slow_stage():
    domain = BlameDomain()
    for _ in range(98):
        domain.add({"stack": 100}, 100)
    for _ in range(2):                       # exactly the p99 tail of 100
        domain.add({"stack": 100, "dma.qpi": 9_900}, 10_000)
    tail = domain.tail_blame(99)
    assert tail["units"] == 2
    assert tail["stage_ns"] == {"stack": 200, "dma.qpi": 19_800}
    report = build_report(_collector_of(domain))
    assert report["p99_blame"]["stage"] == "dma.qpi"
    assert report["p99_blame"]["tail_share"] == pytest.approx(0.99)


def _collector_of(domain):
    collector = BlameCollector()
    collector.domains["flow"] = domain
    return collector


def test_collector_round_trip_and_merge():
    a = BlameCollector()
    a.add({"stack": 70, "wire": 30}, 100)
    b = BlameCollector()
    b.add({"stack": 40, "dma.qpi": 160}, 200)
    b.add({"queue.wait": 5, "app.service": 5}, 10, domain="txn")
    clone = BlameCollector.from_dict(a.to_dict())
    assert clone.to_dict() == a.to_dict()
    a.merge(b)
    flow = a.domain("flow")
    assert flow.flows == 2
    assert flow.total_ns == 300
    assert flow.stage_ns == {"stack": 110, "wire": 30, "dma.qpi": 160}
    assert a.domain("txn").flows == 1
    assert a.conservation_ok


def test_conservation_violation_is_counted_and_reported():
    collector = BlameCollector()
    collector.add({"stack": 70}, 100)        # 30 ns unaccounted
    assert not collector.conservation_ok
    assert collector.violations == 1
    assert "70 != end-to-end 100" in collector.conservation_errors[0]
    report = build_report(collector)
    assert not report["conservation"]["ok"]


# ------------------------------------------------------- burst sampling

def test_begin_blame_stride_samples_bursts():
    tracer = Tracer(enabled=True, blame=BlameCollector())
    admitted = [i for i in range(200)
                if tracer.begin_blame(i) is not None]
    assert len(admitted) == -(-200 // tracer.blame_stride)
    assert admitted[0] == 0
    assert admitted[1] - admitted[0] == tracer.blame_stride
    tracer.clear()
    assert tracer.begin_blame(0) is not None   # phase restarts


def test_begin_blame_stride_one_admits_everything():
    tracer = Tracer(enabled=True, blame=BlameCollector(), blame_stride=1)
    assert all(tracer.begin_blame(i) is not None for i in range(10))
    assert Tracer(enabled=True).begin_blame(0) is None  # no collector


# ----------------------------------------------------------- fleet view

def test_fleet_blame_merges_txn_domains():
    spec = FleetSpec(servers=2, connections=512, duration_ns=2_000_000,
                     epochs=2)
    fleet = run_fleet(spec, master_seed=3, accuracy="fluid", blame=True)
    report = fleet.blame_report("txn")
    names = {row["stage"] for row in report["stages"]}
    assert names == {"queue.wait", "app.service"}
    assert report["conservation"]["ok"]
    assert report["flows"] == fleet.served
    plain = run_fleet(spec, master_seed=3, accuracy="fluid")
    assert plain.blame is None
    with pytest.raises(ValueError):
        plain.blame_report()


# ------------------------------------------------------ fig09 breakdown

def test_fig09_breakdown_reports_paper_style_budgets():
    from repro.experiments.fig09_latency import (render_breakdown,
                                                 run_breakdown)
    breakdown = run_breakdown(fidelity="quick")
    assert set(breakdown["variants"]) == {"ll", "rr", "llnd"}
    for report in breakdown["variants"].values():
        assert report["conservation"]["ok"]
    # rr pays NUDMA stages ll never sees.
    rr_stages = {r["stage"] for r in breakdown["variants"]["rr"]["stages"]}
    ll_stages = {r["stage"] for r in breakdown["variants"]["ll"]["stages"]}
    assert any(s.endswith((".qpi", ".miss")) for s in rr_stages - ll_stages)
    text = render_breakdown(breakdown)
    assert "stack" in text and "rr" in text
    assert "conservation: exact in all variants" in text
