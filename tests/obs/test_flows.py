"""Span and flow tracing: the Tracer upgrade beyond instant events."""

import json

from repro.sim.tracing import Tracer


def make_tracer(**kwargs):
    return Tracer(enabled=True, flows=True, **kwargs)


def test_span_records_duration():
    tracer = make_tracer()
    tracer.span(1000, "pf0", "dma", 250)
    (record,) = tracer.records
    assert record.phase == "X"
    assert record.dur == 250


def test_flow_steps_form_a_staircase():
    tracer = make_tracer()
    flow = tracer.begin_flow(1000)
    flow.step("wire", "wire.rx", 100)
    flow.step("pf0", "dma.rx", 50)
    flow.finish("app", "copy", 10)
    times = [r.time for r in tracer.records]
    assert times == [1000, 1100, 1150]          # each step advances cursor
    phases = [r.flow_phase for r in tracer.records]
    assert phases == ["s", "t", "f"]
    assert len({r.flow_id for r in tracer.records}) == 1


def test_flow_ids_increment_and_active_flow_clears():
    tracer = make_tracer()
    a = tracer.begin_flow(0)
    assert tracer.active_flow is a
    a.finish("x", "done", 0)
    assert tracer.active_flow is None
    b = tracer.begin_flow(10)
    assert b.flow_id == a.flow_id + 1


def run_n_flows(tracer, n, start_ns=0):
    recorded = []
    for i in range(n):
        flow = tracer.begin_flow(start_ns + i)
        if flow is not None:
            flow.finish("x", "d", 0)
            recorded.append(flow.flow_id)
    return recorded


def test_flow_limit_stride_samples_across_the_run():
    tracer = make_tracer(flow_limit=8)
    run_n_flows(tracer, 100)
    kept = sorted({r.flow_id for r in tracer.records})
    # Never over the cap, and not the first-N prefix: survivors sit on
    # one stride lattice spread across the whole candidate range.
    assert len(kept) <= 8
    assert kept == tracer._flow_ids
    assert kept != list(range(len(kept)))
    stride = tracer._flow_stride
    assert stride > 1
    assert all((i - tracer._flow_offset) % stride == 0 for i in kept)
    assert max(kept) >= 50                     # late flows represented


def test_flow_limit_under_cap_is_bit_identical():
    capped = make_tracer(flow_limit=1000)
    uncapped = make_tracer(flow_limit=10**9)
    for tracer in (capped, uncapped):
        for i in range(50):
            flow = tracer.begin_flow(i * 10)
            flow.step("wire", "rx", 5)
            flow.finish("app", "done", 1)
    assert capped.records == uncapped.records  # cap never hit => no-op


def test_begin_flow_none_when_flows_off():
    tracer = Tracer(enabled=True, flows=False)
    assert tracer.begin_flow(0) is None
    disabled = Tracer(enabled=False, flows=True)
    assert disabled.begin_flow(0) is None


def test_chrome_trace_emits_flow_arrows():
    tracer = make_tracer()
    flow = tracer.begin_flow(1000)
    flow.step("wire", "wire.rx", 100, {"packets": 2})
    flow.step("pf0", "dma.rx", 50)
    flow.finish("app", "copy", 10)
    doc = json.loads(tracer.to_chrome_trace())
    events = doc["traceEvents"]
    arrows = [e for e in events if e.get("cat") == "flow"]
    assert [a["ph"] for a in arrows] == ["s", "t", "f"]
    assert arrows[-1]["bp"] == "e"
    assert len({a["id"] for a in arrows}) == 1
    # The span carries structured args, not a stringified payload.
    spans = [e for e in events if e.get("ph") == "X"]
    assert spans[0]["args"] == {"packets": 2}
    assert spans[0]["dur"] == 0.1              # 100 ns in us


def test_chrome_trace_counter_and_histogram_rows():
    tracer = make_tracer()
    tracer.emit(0, "pf0", "start")
    doc = json.loads(tracer.to_chrome_trace(
        counters={"qpi.util": [(0, 0.5), (1000, 0.7)]},
        histograms={"rtt": {"count": 2, "p50": 10}}))
    events = doc["traceEvents"]
    counters = [e for e in events if e.get("ph") == "C"]
    assert len(counters) == 2
    assert counters[0]["args"] == {"value": 0.5}
    meta = [e for e in events
            if e.get("ph") == "M" and e["name"] == "histogram:rtt"]
    assert meta and meta[0]["args"]["p50"] == 10


def test_by_flow_filters_records():
    tracer = make_tracer()
    a = tracer.begin_flow(0)
    a.step("x", "one", 1)
    a.finish("x", "two", 1)
    b = tracer.begin_flow(100)
    b.finish("y", "three", 1)
    assert len(tracer.by_flow(a.flow_id)) == 2
    assert len(tracer.by_flow(b.flow_id)) == 1


def test_clear_resets_flow_state():
    tracer = make_tracer()
    tracer.begin_flow(0)
    tracer.clear()
    assert tracer.records == []
    assert tracer.active_flow is None
