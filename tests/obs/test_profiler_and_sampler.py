"""Engine self-profiler and utilization sampler unit behaviour."""

import pytest

from repro.obs import EngineProfiler, UtilizationSampler
from repro.sim.engine import Environment


def ticker(env, period, count):
    for _ in range(count):
        yield env.timeout(period)


def test_profiler_attributes_wall_clock_by_process():
    env = Environment()
    env.process(ticker(env, 10, 5), name="tick")
    profiler = EngineProfiler(env)
    profiler.install()
    env.run(until=100)
    assert profiler.total_wall_s() > 0
    categories = dict(profiler.by_category)
    tick = categories.get("process:tick")
    assert tick is not None and tick[0] >= 5
    table = profiler.table()
    assert "process:tick" in table
    profiler.uninstall()
    assert "step" not in env.__dict__


def test_profiler_double_install_rejected():
    env = Environment()
    profiler = EngineProfiler(env)
    profiler.install()
    with pytest.raises(ValueError):
        profiler.install()


def test_profiler_does_not_change_event_count():
    def run(profile):
        env = Environment()
        env.process(ticker(env, 10, 20), name="tick")
        if profile:
            EngineProfiler(env).install()
        env.run(until=500)
        return env.events_processed

    assert run(True) == run(False)


def test_sampler_rate_and_gauge_channels():
    env = Environment()
    state = {"bytes": 0, "level": 0.0}

    def producer():
        while True:
            yield env.timeout(50)
            state["bytes"] += 500
            state["level"] = 0.25

    env.process(producer(), name="producer")
    sampler = UtilizationSampler(env, interval_ns=100)
    rate = sampler.add_rate("bytes", lambda: state["bytes"])
    gauge = sampler.add_gauge("level", lambda: state["level"])
    sampler.start(1000)
    env.run(until=2000)
    assert sampler.samples_taken == 10
    # 500 bytes / 50 ns => 10 bytes/ns per interval delta.
    assert rate.value_at(1000) == pytest.approx(10.0)
    assert gauge.value_at(1000) == 0.25
    tracks = sampler.counter_tracks()
    assert len(tracks["bytes"]) == 10


def test_sampler_stops_at_horizon():
    env = Environment()
    sampler = UtilizationSampler(env, interval_ns=300)
    sampler.add_gauge("x", lambda: 1.0)
    sampler.start(1000)
    env.run(until=5000)
    # 300, 600, 900 fit under 1000; the next tick would overshoot.
    assert sampler.samples_taken == 3


def test_sampler_rejects_duplicates_and_bad_interval():
    env = Environment()
    sampler = UtilizationSampler(env, interval_ns=10)
    sampler.add_gauge("x", lambda: 1.0)
    with pytest.raises(ValueError):
        sampler.add_rate("x", lambda: 1.0)
    with pytest.raises(ValueError):
        UtilizationSampler(env, interval_ns=0)
