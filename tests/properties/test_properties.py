"""Property-based tests (hypothesis) on the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.llc import LastLevelCache
from repro.memory.region import Region
from repro.nic.packet import Flow, packets_for, wire_bytes
from repro.nic.steering import ArfsTable, rss_hash
from repro.sim import BandwidthServer, Environment, SimRandom, Store
from repro.sim.resources import Resource


# ------------------------------------------------------------- LLC

@st.composite
def llc_operations(draw):
    """A sequence of (op, region_index, nbytes) operations."""
    n_regions = draw(st.integers(min_value=1, max_value=6))
    ops = draw(st.lists(
        st.tuples(st.sampled_from(["load", "ddio", "invalidate"]),
                  st.integers(min_value=0, max_value=n_regions - 1),
                  st.integers(min_value=1, max_value=4096)),
        min_size=1, max_size=60))
    return n_regions, ops


@given(llc_operations())
@settings(max_examples=100, deadline=None)
def test_llc_invariants_hold_under_any_operation_sequence(case):
    n_regions, ops = case
    llc = LastLevelCache(node_id=0, capacity=8192, ddio_fraction=0.25)
    regions = [Region(name=f"r{i}", home_node=0, size=2048)
               for i in range(n_regions)]
    for op, index, nbytes in ops:
        region = regions[index]
        if op == "load":
            llc.load(region, nbytes)
        elif op == "ddio":
            absorbed = llc.ddio_write(region, nbytes)
            assert 0 <= absorbed <= min(nbytes, llc.ddio_capacity)
        else:
            llc.invalidate(region, nbytes)
        # Invariants after every step:
        assert 0 <= llc.occupied <= llc.capacity
        assert 0 <= llc._ddio_occupied <= llc.ddio_capacity
        assert llc._ddio_occupied <= llc.occupied
        for r in regions:
            resident = llc.resident_bytes(r)
            assert 0 <= resident <= r.size
        assert llc.occupied == sum(llc.resident_bytes(r) for r in regions)


# ------------------------------------------------------- BandwidthServer

@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                max_size=40),
       st.floats(min_value=1e6, max_value=1e11))
@settings(max_examples=100, deadline=None)
def test_bandwidth_server_conserves_bytes_and_orders_fifo(sizes, rate):
    env = Environment()
    server = BandwidthServer(env, rate)
    completions = []
    for nbytes in sizes:
        delay = server.account(nbytes)
        completions.append(env.now + delay)
    assert server.bytes_total == sum(sizes)
    # FIFO: completion times are non-decreasing.
    assert completions == sorted(completions)
    # Total busy time equals service for all bytes (+- rounding).
    expected = sum(int(round(n * 1e9 / rate)) for n in sizes)
    assert abs(completions[-1] - expected) <= len(sizes)


# ----------------------------------------------------------------- Store

@given(st.lists(st.sampled_from(["put", "get"]), min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_store_never_loses_or_invents_items(ops):
    env = Environment()
    store = Store(env)
    put_count = 0
    got = []
    for op in ops:
        if op == "put":
            store.put(put_count)
            put_count += 1
        else:
            item = store.try_get()
            if item is not None:
                got.append(item)
    assert got == sorted(got)            # FIFO order
    assert len(got) + store.level == put_count


# -------------------------------------------------------------- Resource

@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=30))
@settings(max_examples=50, deadline=None)
def test_resource_never_exceeds_capacity(capacity, n_requests):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    requests = [resource.request() for _ in range(n_requests)]
    assert resource.count == min(capacity, n_requests)
    granted = [r for r in requests if r.triggered]
    assert len(granted) == min(capacity, n_requests)
    for request in granted:
        resource.release(request)
    assert resource.count == min(capacity, max(0, n_requests - capacity))


# ------------------------------------------------------------- steering

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=30),
                          st.integers(min_value=0, max_value=7)),
                min_size=1, max_size=80))
@settings(max_examples=100, deadline=None)
def test_arfs_last_update_wins(updates):
    table = ArfsTable()
    latest = {}
    for flow_index, queue in updates:
        flow = Flow.make(flow_index)
        table.update(flow, queue)
        latest[flow] = queue
    for flow, queue in latest.items():
        assert table.lookup(flow) == queue
    assert len(table) == len(latest)


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=100, deadline=None)
def test_rss_hash_deterministic_and_bounded(index, buckets):
    flow = Flow.make(index)
    value = rss_hash(flow, buckets)
    assert 0 <= value < buckets
    assert value == rss_hash(flow, buckets)


# --------------------------------------------------------------- packets

@given(st.integers(min_value=0, max_value=10**7),
       st.integers(min_value=100, max_value=9000))
@settings(max_examples=200, deadline=None)
def test_packets_for_covers_message_exactly_once(message, mss):
    pkts = packets_for(message, mss)
    assert pkts >= 1
    assert pkts * mss >= message
    if message > 0:
        assert (pkts - 1) * mss < message


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=200, deadline=None)
def test_wire_bytes_monotone_and_exceeds_payload(payload):
    size = wire_bytes(payload)
    assert size > payload
    assert wire_bytes(payload + 1) >= size


# ------------------------------------------------------------------- rng

@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1,
                                                          max_size=20))
@settings(max_examples=100, deadline=None)
def test_simrandom_children_reproducible(seed, name):
    a = SimRandom(seed).child(name)
    b = SimRandom(seed).child(name)
    assert [a.random() for _ in range(5)] == [b.random()
                                              for _ in range(5)]


# ------------------------------------------------------------ event order

@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=50))
@settings(max_examples=100, deadline=None)
def test_simulation_fires_timeouts_in_time_order(delays):
    env = Environment()
    fired = []

    def waiter(delay):
        yield env.timeout(delay)
        fired.append(delay)

    for delay in delays:
        env.process(waiter(delay))
    env.run()
    assert fired == sorted(delays)
    assert env.now == max(delays)
