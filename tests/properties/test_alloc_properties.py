"""Property tests for the NUMA allocator and the moderation ramp."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nic.moderation import AdaptiveCoalescing
from repro.os_model.alloc import PAGE, NumaAllocator, OutOfMemoryError
from repro.topology import dell_r730


@st.composite
def alloc_programs(draw):
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["alloc", "free", "migrate"]),
            st.sampled_from(["local", "node", "interleave", "preferred"]),
            st.integers(min_value=1, max_value=512 * 1024),
            st.integers(min_value=0, max_value=1),
        ),
        min_size=1, max_size=40))
    return ops


@given(alloc_programs())
@settings(max_examples=60, deadline=None)
def test_allocator_accounting_is_exact(ops):
    allocator = NumaAllocator(dell_r730())
    live = []
    for i, (op, policy, size, node) in enumerate(ops):
        try:
            if op == "alloc":
                live.append(allocator.alloc(
                    f"r{i}", size, policy=policy, cpu_node=node,
                    target_node=node))
            elif op == "free" and live:
                allocator.free(live.pop())
            elif op == "migrate" and live:
                live[-1] = allocator.migrate(live[-1], node)
        except OutOfMemoryError:
            pass
        # Invariants after every operation:
        for n, used in allocator.allocated.items():
            assert 0 <= used <= allocator.capacity[n]
            assert used % PAGE == 0
        total_live = sum(r.allocated_bytes for r in allocator.regions)
        assert total_live == sum(allocator.allocated.values())
    # Every live region is page-rounded and at least its requested size.
    for region in live:
        assert region.allocated_bytes >= region.size
        assert region.allocated_bytes % PAGE == 0


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=256),
                          st.integers(min_value=1, max_value=10**7)),
                min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_moderation_never_exceeds_packet_count(batches):
    moderation = AdaptiveCoalescing()
    now = 0
    for npackets, gap in batches:
        interrupts = moderation.interrupts_for(npackets, now)
        assert 1 <= interrupts <= npackets
        assert 1 <= moderation.current_budget() <= moderation.max_frames
        now += gap


@given(st.integers(min_value=1, max_value=64))
@settings(max_examples=30, deadline=None)
def test_moderation_disabled_is_per_packet(npackets):
    moderation = AdaptiveCoalescing(enabled=False)
    # Drive the observed rate high anyway.
    now = 0
    for _ in range(20):
        moderation.interrupts_for(64, now)
        now += 1000
    assert moderation.interrupts_for(npackets, now) == npackets
