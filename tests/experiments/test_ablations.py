"""Integration tests for the ablation experiments (quick fidelity)."""

import pytest

from repro.experiments import get_experiment

FIDELITY = "quick"


@pytest.fixture(scope="module")
def results():
    cache = {}

    def run(name):
        if name not in cache:
            cache[name] = get_experiment(name).run(fidelity=FIDELITY)
        return cache[name]

    return run


def test_abl_wiring_tradeoffs(results):
    rows = {r["wiring"]: r for r in results("abl_wiring").as_dicts()}
    assert rows["switch"]["doorbell_ns"] > rows["bifurcation"]["doorbell_ns"]
    assert rows["switch"]["power_w"] > 0 == rows["bifurcation"]["power_w"]
    assert rows["switch"]["lanes"] == 2 * rows["bifurcation"]["lanes"]
    # Throughput impact of the hop is small for a CPU-bound workload.
    assert rows["switch"]["pktgen_mpps"] == pytest.approx(
        rows["bifurcation"]["pktgen_mpps"], rel=0.05)


def test_abl_sg_hints_win_and_avoid_crossings(results):
    table = results("abl_sg")
    for row in table.as_dicts():
        assert row["hinted_delay_us"] < row["fixed_pf_delay_us"]
        assert row["interconnect_bytes_fixed"] > 0
    # Roughly half the fragments live on the far node.
    last = table.as_dicts()[-1]
    assert last["interconnect_bytes_fixed"] >= 64 * 64 * 1024 // 2


def test_abl_octossd_eliminates_storage_nudma(results):
    table = results("abl_octossd")
    assert min(table.column("octossd_norm")) >= 0.98
    assert min(table.column("single_port_norm")) < 0.90


def test_abl_ddio_smaller_llc_more_traffic(results):
    per_gbit = results("abl_ddio").column("membw_per_gbit")
    assert per_gbit[-1] > per_gbit[0]


def test_abl_window_monotone(results):
    rates = results("abl_window").column("remote_rx_gbps")
    # Monotone up to plateau noise once the flash/CPU bound is reached.
    assert all(b >= a * 0.98 for a, b in zip(rates, rates[1:]))
    assert rates[-1] > rates[0]


def test_abl_scale_four_sockets(results):
    table = results("abl_scale")
    rows = table.as_dicts()
    assert len(rows) == 4
    # Node 0 is local for both arrangements.
    assert rows[0]["standard_pf0_gbps"] == pytest.approx(
        rows[0]["octo_gbps"], rel=0.02)
    for row in rows[1:]:
        assert row["standard_pf0_gbps"] < row["octo_gbps"]
        # The octoNIC keeps the far nodes at the local rate.
        assert row["octo_gbps"] == pytest.approx(rows[0]["octo_gbps"],
                                                 rel=0.02)
