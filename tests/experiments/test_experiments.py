"""Integration tests: every experiment runs and upholds the paper's claims.

These use ``quick`` fidelity (10 ms of simulated time per point) so the
whole file stays fast; the benchmarks run the same experiments at full
fidelity.
"""

import pytest

from repro.experiments import all_experiment_names, get_experiment

FIDELITY = "quick"


@pytest.fixture(scope="module")
def results():
    cache = {}

    def run(name):
        if name not in cache:
            cache[name] = get_experiment(name).run(fidelity=FIDELITY)
        return cache[name]

    return run


def test_registry_lists_all_paper_experiments():
    names = all_experiment_names()
    for expected in ("fig02", "fig06", "fig07", "fig08", "fig09", "fig10",
                     "fig11", "fig12", "fig13", "fig14", "fig15", "sec24",
                     "sec511"):
        assert expected in names


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        get_experiment("fig99")


def test_fig02_nic_outpaces_cloud_cpus(results):
    table = results("fig02")
    # Throughout the series, one NIC covers the cloud-rate CPU many times.
    assert all(x >= 1 for x in table.column("nic_covers_cloud_cpus"))
    # By 2016 (100 GbE) even a full bare-metal CPU is covered.
    rows = {r["year"]: r for r in table.as_dicts()}
    assert rows[2016]["nic_covers_baremetal_cpus"] >= 1.0


def test_fig06_rx_local_beats_remote_and_ratio_grows(results):
    table = results("fig06")
    ratios = table.column("ratio_local_over_remote")
    assert all(r > 1.05 for r in ratios)
    assert ratios[-1] > ratios[0]          # grows with message size
    assert 1.15 <= ratios[-1] <= 1.45      # paper: ~1.26 at 64 KB
    # ioctopus == local (the headline claim).
    for row in table.as_dicts():
        assert row["ioct_gbps"] == pytest.approx(row["local_gbps"],
                                                 rel=0.02)


def test_fig06_remote_membw_about_3x_throughput(results):
    row = results("fig06").as_dicts()[-1]    # 64 KB messages
    assert row["remote_membw_gbps"] == pytest.approx(
        3 * row["remote_gbps"], rel=0.25)
    assert row["ioct_membw_gbps"] < 0.1 * row["ioct_gbps"]


def test_fig07_tx_placements_comparable(results):
    table = results("fig07")
    for ratio in table.column("ratio_local_over_remote"):
        assert 0.95 <= ratio <= 1.10
    # Remote membw equals throughput (parallel probe), local ~0.
    row = table.as_dicts()[-1]
    assert row["remote_membw_over_tput"] == pytest.approx(1.0, abs=0.15)
    assert row["ioct_membw_gbps"] < 0.1 * row["ioct_gbps"]


def test_fig07_absolute_tx_rate_near_paper(results):
    row = results("fig07").as_dicts()[-1]
    assert 40 <= row["local_gbps"] <= 55     # paper: ~47 Gb/s


def test_fig08_pktgen_rates_and_ratio(results):
    table = results("fig08")
    for row in table.as_dicts():
        assert 1.25 <= row["ratio"] <= 1.45  # paper: 1.30-1.39
        assert row["ioct_mpps"] == pytest.approx(4.1, rel=0.05)
        assert row["remote_mpps"] == pytest.approx(3.05, rel=0.06)
        assert row["ioct_membw_gbps"] < 1.0  # DDIO: no DRAM traffic
        assert row["remote_membw_gbps"] > row["remote_gbps"] * 0.7


def test_fig09_latency_ordering_and_bands(results):
    table = results("fig09")
    for row in table.as_dicts():
        assert 1.03 <= row["rr_over_ll"] <= 1.30   # paper: 10-25%
        assert 1.0 <= row["llnd_over_ll"] < row["rr_over_ll"]


def test_fig10_memcached_advantage_grows_with_sets(results):
    table = results("fig10")
    ratios = table.column("ratio")
    assert ratios[-1] > ratios[0]
    assert ratios[-1] >= 1.10               # paper: up to ~1.16
    for row in table.as_dicts():
        assert row["ioct_ktps"] >= row["remote_ktps"] * 0.99


def test_fig11_gap_widens_with_congestion(results):
    table = results("fig11")
    ratios = table.column("ratio")
    assert ratios[0] >= 1.2
    assert max(ratios) >= 1.7               # paper: up to 2.67x
    assert ratios[-1] > ratios[0]
    # ioct also degrades, but mildly.
    ioct = table.column("ioct_gbps")
    assert ioct[-1] < ioct[0] * 1.02


def test_fig12_remote_latency_grows_ioct_flat(results):
    table = results("fig12")
    ioct = table.column("ioct_us")
    remote = table.column("remote_us")
    assert remote[-1] > remote[0] * 1.1     # grows with congestion
    assert abs(ioct[-1] - ioct[0]) < 0.2    # flat
    for ratio in table.column("ioct_over_remote"):
        assert ratio < 0.97                 # ioct always lower


def test_fig13_remote_io_slows_pagerank(results):
    table = results("fig13")
    for row in table.as_dicts():
        assert row["pr_slowdown_remote"] > 1.02


def test_fig14_octonic_resteers_standard_does_not(results):
    table = results("fig14")
    rows = table.as_dicts()
    octo = [r for r in rows if r["config"] == "octoNIC"]
    std = [r for r in rows if r["config"] == "ethNIC"]
    # octoNIC: traffic fully moves from pf0 to pf1 at the same level.
    assert octo[0]["pf0_gbps"] > 20 and octo[0]["pf1_gbps"] == 0
    assert octo[-1]["pf1_gbps"] > 20 and octo[-1]["pf0_gbps"] == 0
    assert octo[-1]["pf1_gbps"] == pytest.approx(octo[0]["pf0_gbps"],
                                                 rel=0.05)
    # standard NIC: stays on pf0, drops to remote level.
    assert std[-1]["pf1_gbps"] == 0
    assert std[-1]["pf0_gbps"] < std[0]["pf0_gbps"] * 0.85


def test_fig15_fio_degrades_then_flattens(results):
    table = results("fig15")
    norm = table.column("fio_normalized")
    assert norm[0] == 1.0
    assert 0.70 <= min(norm) <= 0.85        # paper: up to ~24% degradation
    # Flattens: the last two points are equal-ish.
    assert norm[-1] == pytest.approx(norm[-2], abs=0.03)


def test_sec24_remote_ddio_is_marginal(results):
    table = results("sec24")
    improvement = table.as_dicts()[1]["vs_default_remote"]
    assert 0.95 <= improvement <= 1.05      # paper: "up to 2%"


def test_sec511_multicore_line_rate_and_memory_traffic(results):
    table = results("sec511")
    rows = {r["config"]: r for r in table.as_dicts()}
    # ioctopus reaches (near) wire line rate across both PFs.
    assert rows["ioctopus"]["total_gbps"] > 85
    # Unlike single-core, ioctopus now shows real memory traffic.
    assert rows["ioctopus"]["membw_gbps"] > 10
    # remote pays ~3x memory bandwidth.
    assert rows["remote"]["membw_per_gbit"] > 2.5


def test_every_experiment_has_table_output(results):
    for name in all_experiment_names():
        table = results(name)
        text = table.table()
        assert name in text
        assert len(table.rows) >= 2
