"""Determinism regression goldens: seeded runs must be byte-identical.

These values were captured from the seed revision of the repository
(before the event pool, delay-0 fast lane, and steering/route memoization
landed) and pin the fast-path kernel to the exact floating-point results
of the original straight-line code.  If any of these change, an
"optimization" altered simulation behaviour — that is a bug, not a
baseline refresh.

Every call pins ``accuracy="exact"``: the goldens define the exact mode,
regardless of the REPRO_ACCURACY process default (the CI matrix runs the
suite under both modes).  Adaptive-vs-exact fidelity is covered by
``test_batching.py``.
"""

from __future__ import annotations

from repro.experiments.runners import run_pktgen, run_tcp_rr, run_tcp_stream

D = 10_000_000  # 10 ms simulated


def test_tcp_rx_ioctopus_golden():
    assert run_tcp_stream("ioctopus", 4096, "rx", D, seed=0, accuracy="exact") == {
        "throughput_gbps": 17.702430117647058,
        "membw_gbps": 0.0,
        "cpu_cores": 0.9999417647058824,
    }


def test_tcp_rx_remote_golden():
    assert run_tcp_stream("remote", 4096, "rx", D, seed=3, accuracy="exact") == {
        "throughput_gbps": 14.433340235294118,
        "membw_gbps": 46.61235952941176,
        "cpu_cores": 1.0,
    }


def test_tcp_tx_local_golden():
    assert run_tcp_stream("local", 4096, "tx", D, seed=1, accuracy="exact") == {
        "throughput_gbps": 16.160406588235293,
        "membw_gbps": 4.357123764705882,
        "cpu_cores": 0.9981475294117647,
    }


def test_pktgen_remote_golden():
    assert run_pktgen("remote", 256, D, seed=0, accuracy="exact") == {
        "throughput_gbps": 6.214354823529412,
        "mpps": 3.0343529411764707,
        "membw_gbps": 9.34580705882353,
    }


def test_pktgen_ioctopus_golden():
    assert run_pktgen("ioctopus", 1500, D, seed=7, accuracy="exact") == {
        "throughput_gbps": 48.60988235294118,
        "mpps": 4.0508235294117645,
        "membw_gbps": 0.0,
    }


def test_tcp_rr_golden():
    assert run_tcp_rr("local", "local", True, 1024, D,
                      seed=0, accuracy="exact") == 9892.324796274737


def test_tcp_rr_no_ddio_golden():
    assert run_tcp_rr("remote", "remote", False, 64, D,
                      seed=2, accuracy="exact") == 9682.681093394078


def test_repeat_run_is_identical():
    """Same seed twice in one process: the pool must not leak state."""
    first = run_pktgen("ioctopus", 256, D, seed=5, accuracy="exact")
    second = run_pktgen("ioctopus", 256, D, seed=5, accuracy="exact")
    assert second == first


def test_fig15_quick_point_golden():
    """Pin the event-driven NVMe path (device-core port) exactly.

    Captured when the NVMe stack moved onto the shared octo-device core
    (DmaQueuePair + DoorbellPath + CompletionPath).  The fio pipeline is
    counter-based and batching-invariant, so these hold under both
    accuracy modes; a change means the storage data path's arithmetic
    moved, not that a baseline needs refreshing.
    """
    from repro.experiments.fig15_nvme import run_fio_point

    assert run_fio_point(n_streams=0, duration_ns=2 * D) == {
        "fio_gbps": 201.326592,
        "stream_gbps": 0,
    }
    assert run_fio_point(n_streams=5, duration_ns=2 * D) == {
        "fio_gbps": 159.383552,
        "stream_gbps": 84.03968,
    }
