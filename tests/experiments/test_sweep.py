"""Sweep executor: cache hit/miss/invalidation, ordering, parallel mode."""

from __future__ import annotations

import json

import pytest

from repro.experiments import sweep
from repro.experiments.runners import run_pktgen
from repro.experiments.sweep import sweep_map

CALLS = []


def point_fn(x: int, seed: int = 0) -> dict:
    """A toy point runner: records calls so tests can count executions."""
    CALLS.append((x, seed))
    return {"x": x, "seed": seed, "value": x * 10 + seed}


def unpicklable_result(x: int):
    return object()  # not JSON-serialisable: must silently skip the cache


@pytest.fixture(autouse=True)
def _clean():
    CALLS.clear()
    yield
    CALLS.clear()
    sweep._code_fingerprint = None
    sweep.shutdown_pool()


def test_would_parallelize_predicate(monkeypatch):
    monkeypatch.setattr(sweep.os, "cpu_count", lambda: 8)
    assert sweep.would_parallelize(sweep.MIN_PARALLEL_POINTS, jobs=4)
    # Too few points, jobs=1, or a single-CPU host all fall back.
    assert not sweep.would_parallelize(sweep.MIN_PARALLEL_POINTS - 1,
                                       jobs=4)
    assert not sweep.would_parallelize(100, jobs=1)
    monkeypatch.setattr(sweep.os, "cpu_count", lambda: 1)
    assert not sweep.would_parallelize(100, jobs=4)


def test_would_parallelize_defaults_to_configured_jobs(monkeypatch):
    monkeypatch.setattr(sweep.os, "cpu_count", lambda: 8)
    monkeypatch.setattr(sweep, "_jobs", 4)
    assert sweep.would_parallelize(10)
    monkeypatch.setattr(sweep, "_jobs", 1)
    assert not sweep.would_parallelize(10)


def test_results_in_submission_order():
    points = [dict(x=x) for x in (5, 1, 9, 3)]
    assert sweep_map(point_fn, points) == [point_fn(x=x)
                                           for x in (5, 1, 9, 3)]


def test_cache_hit_skips_execution(tmp_path):
    points = [dict(x=1), dict(x=2)]
    first = sweep_map(point_fn, points, cache_dir=str(tmp_path))
    assert len(CALLS) == 2
    second = sweep_map(point_fn, points, cache_dir=str(tmp_path))
    assert len(CALLS) == 2  # both points served from cache
    assert second == first


def test_cache_miss_on_param_change(tmp_path):
    sweep_map(point_fn, [dict(x=1)], cache_dir=str(tmp_path))
    sweep_map(point_fn, [dict(x=1, seed=7)], cache_dir=str(tmp_path))
    assert CALLS == [(1, 0), (1, 7)]


def test_cache_invalidated_on_code_change(tmp_path, monkeypatch):
    sweep_map(point_fn, [dict(x=1)], cache_dir=str(tmp_path))
    assert len(CALLS) == 1
    # Simulate an edit to any simulator source file: the fingerprint
    # changes, so every cached point is a miss.
    monkeypatch.setattr(sweep, "_code_fingerprint", "deadbeef" * 8)
    sweep_map(point_fn, [dict(x=1)], cache_dir=str(tmp_path))
    assert len(CALLS) == 2


def test_cache_entry_records_fn_and_params(tmp_path):
    sweep_map(point_fn, [dict(x=4, seed=2)], cache_dir=str(tmp_path))
    entries = list(tmp_path.glob("*.json"))
    assert len(entries) == 1
    envelope = json.loads(entries[0].read_text())
    assert envelope["fn"].endswith(":point_fn")
    assert envelope["params"] == {"x": 4, "seed": 2}
    assert envelope["result"]["value"] == 42


def test_non_json_result_skips_cache(tmp_path):
    out = sweep_map(unpicklable_result, [dict(x=1)],
                    cache_dir=str(tmp_path))
    assert len(out) == 1
    assert list(tmp_path.glob("*.json")) == []
    # And a re-run executes again rather than failing.
    sweep_map(unpicklable_result, [dict(x=1)], cache_dir=str(tmp_path))


def test_no_cache_dir_always_executes():
    sweep_map(point_fn, [dict(x=1)])
    sweep_map(point_fn, [dict(x=1)])
    assert len(CALLS) == 2


def test_configure_rejects_bad_jobs():
    with pytest.raises(ValueError):
        sweep.configure(jobs=0)


def test_parallel_matches_serial():
    """Workers produce byte-identical metrics to inline execution."""
    points = [dict(config=config, packet_bytes=256,
                   duration_ns=2_000_000, seed=s)
              for s in (0, 1) for config in ("ioctopus", "remote")]
    serial = sweep_map(run_pktgen, points, jobs=1)
    parallel = sweep_map(run_pktgen, points, jobs=4)
    assert parallel == serial


def test_parallel_uses_cache(tmp_path):
    points = [dict(config="remote", packet_bytes=256,
                   duration_ns=2_000_000, seed=s) for s in (0, 1, 2)]
    first = sweep_map(run_pktgen, points, jobs=4,
                      cache_dir=str(tmp_path))
    assert len(list(tmp_path.glob("*.json"))) == 3
    second = sweep_map(run_pktgen, points, jobs=4,
                       cache_dir=str(tmp_path))
    assert second == first
