"""Packet-train coalescing + adaptive early termination.

Three contracts:

(a) ``accuracy="exact"`` reproduces the PR 2 determinism goldens
    byte-for-byte — the train fast path must be completely inert there.
(b) ``accuracy="adaptive"`` lands every fig06/fig08/fig10 quick-point
    metric within 1% relative error of exact, while cutting simulated
    events per packet by at least 3x on the fig08 pktgen point.
(c) Trains de-coalesce at steady-state boundaries: an ARFS migration and
    a PF-failover fault both reset the train length mid-run.
"""

from __future__ import annotations

import pytest

from repro.core import Testbed
from repro.experiments.fig10_memcached import run_memcached
from repro.experiments.runners import (run_pktgen, run_tcp_stream,
                                       run_until_converged, warmup_of)
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.nic.packet import Flow
from repro.units import KB
from repro.workloads.netperf import TcpStream
from repro.workloads.pktgen import Pktgen

D = 10_000_000  # the "quick" fidelity duration


def assert_within(exact: dict, adaptive: dict, rel: float = 0.01) -> None:
    assert set(exact) == set(adaptive)
    for key, want in exact.items():
        got = adaptive[key]
        if want == 0:
            assert got == pytest.approx(0.0, abs=1e-9), key
        else:
            assert got == pytest.approx(want, rel=rel), key


# ------------------------------------------------------------- (a) exact

def test_exact_mode_reproduces_pktgen_golden():
    assert run_pktgen("remote", 256, D, seed=0, accuracy="exact") == {
        "throughput_gbps": 6.214354823529412,
        "mpps": 3.0343529411764707,
        "membw_gbps": 9.34580705882353,
    }


def test_exact_mode_reproduces_tcp_golden():
    assert run_tcp_stream("ioctopus", 4096, "rx", D, seed=0,
                          accuracy="exact") == {
        "throughput_gbps": 17.702430117647058,
        "membw_gbps": 0.0,
        "cpu_cores": 0.9999417647058824,
    }


def test_exact_mode_never_plans_trains():
    testbed = Testbed("remote", seed=0, accuracy="exact")
    workload = Pktgen(testbed.server, testbed.server_core(0), 256, D,
                      warmup_of(D))
    testbed.run(D)
    assert workload.governor.trains == 0
    assert workload.governor.max_bursts_seen == 1


# ---------------------------------------------------------- (b) fidelity

@pytest.mark.parametrize("config,message_bytes", [
    ("remote", 4096), ("ioctopus", 4096)])
def test_adaptive_matches_exact_fig06_points(config, message_bytes):
    exact = run_tcp_stream(config, message_bytes, "rx", D, seed=0,
                           accuracy="exact")
    adaptive = run_tcp_stream(config, message_bytes, "rx", D, seed=0,
                              accuracy="adaptive")
    assert_within(exact, adaptive)


@pytest.mark.parametrize("config,packet_bytes", [
    ("remote", 256), ("ioctopus", 1500)])
def test_adaptive_matches_exact_fig08_points(config, packet_bytes):
    exact = run_pktgen(config, packet_bytes, D, seed=0, accuracy="exact")
    adaptive = run_pktgen(config, packet_bytes, D, seed=0,
                          accuracy="adaptive")
    assert_within(exact, adaptive)


def test_adaptive_matches_exact_fig10_point():
    duration = 3 * D  # fig10 runs quick points at 3x (txns are ~100 us)
    exact = run_memcached("ioctopus", 0.5, duration, accuracy="exact")
    adaptive = run_memcached("ioctopus", 0.5, duration,
                             accuracy="adaptive")
    assert_within(exact, adaptive)


def test_adaptive_cuts_events_per_packet_3x():
    counts = {}
    for accuracy in ("exact", "adaptive"):
        testbed = Testbed("remote", seed=0, accuracy=accuracy)
        workload = Pktgen(testbed.server, testbed.server_core(0), 256, D,
                          warmup_of(D))
        if testbed.env.adaptive:
            run_until_converged(testbed, D, workload.meter.mpps)
        else:
            testbed.run(D + D // 5)
        packets = workload.meter.messages_total
        assert packets > 0
        counts[accuracy] = testbed.env.events_processed / packets
    assert counts["exact"] >= 3.0 * counts["adaptive"]


# ------------------------------------------------------ (c) de-coalescing

def _adaptive_stream(config: str, duration_ns: int, seed: int = 0):
    testbed = Testbed(config, seed=seed, accuracy="adaptive")
    host = testbed.server
    workload = TcpStream(host, host.machine.cores_on_node(0)[0],
                         Flow.make(0), 64 * KB, "rx", duration_ns,
                         warmup_of(duration_ns))
    return testbed, workload


def test_arfs_migration_decoalesces_train():
    duration = 40_000_000
    testbed, workload = _adaptive_stream("ioctopus", duration)
    host = testbed.server
    target_core = host.machine.cores_on_node(1)[0]

    def migrator():
        yield testbed.env.timeout(duration // 2)
        host.scheduler.set_affinity(workload.thread, target_core)

    testbed.env.process(migrator(), name="migrator")
    testbed.run(duration)
    governor = workload.governor
    # Trains had grown before the boundary ...
    assert governor.max_bursts_seen > 1
    # ... and the migration (new core + queues + steering epoch) reset
    # them.  The workload kept running on the new core afterwards.
    assert governor.decoalesce_events >= 1
    assert workload.meter.messages_total > 0


def test_pf_failover_decoalesces_train():
    duration = 40_000_000
    testbed, workload = _adaptive_stream("ioctopus", duration)
    # PF0 is local to the node-0 socket serving the flow; killing it
    # mid-run forces the octoNIC MPFS failover (steering epoch bump).
    plan = FaultPlan().add(
        FaultSpec("pf_down", at_ns=duration // 2,
                  duration_ns=duration // 4, pf_id=0))
    injector = FaultInjector(testbed.env, plan,
                             device=testbed.server.nic,
                             wire=testbed.wire,
                             machine=testbed.server.machine,
                             rng=testbed.server.machine.rng)
    injector.start()
    testbed.run(duration)
    governor = workload.governor
    assert governor.max_bursts_seen > 1
    assert governor.decoalesce_events >= 1
    # The fault fired and the flow survived it.
    assert any(e == "fault.pf_down" for _, e, _ in injector.events)
    assert workload.meter.messages_total > 0
