"""The ablation engine: matrices, ranking, caching, renderers, CLI."""

from __future__ import annotations

import json

import pytest

from repro.components import SystemConfig, component_names, loo_matrix
from repro.experiments import ablate
from repro.experiments.ablate import (
    AblationTarget,
    get_target,
    matrix_points,
    register_target,
    render_json,
    render_text,
    run_ablation,
    target_names,
)
from repro.experiments.sweep import configure

SHORT = 1_000_000


@pytest.fixture(autouse=True)
def _serial_uncached_sweep():
    """Each test starts from serial, uncached sweep defaults."""
    from repro.experiments import sweep
    previous_jobs, previous_cache = sweep._jobs, sweep._cache_dir
    configure(jobs=1, cache_dir="")
    yield
    sweep._jobs, sweep._cache_dir = previous_jobs, previous_cache


def fake_point(config="ioctopus", duration_ns=0, seed=0, accuracy=None,
               components=None):
    """Deterministic synthetic runner: ddio is load-bearing, xps is
    harmful, everything else is inert."""
    components = components or {}
    value = 100.0
    if components.get("ddio") is False:
        value -= 25.0
    if components.get("xps") is False:
        value += 10.0
    return {"metric": value}


@pytest.fixture
def fake_target():
    target = AblationTarget(
        figure="fake", metric="metric", unit="u", higher_is_better=True,
        fn=fake_point, base_params=(("config", "ioctopus"),),
        result_key="metric", description="synthetic ranking fixture")
    register_target(target)
    yield target
    del ablate._TARGETS["fake"]


def test_registered_targets_cover_the_headline_figures():
    assert "fig08" in target_names()
    assert get_target("fig08").metric == "mpps"
    assert not get_target("fig09").higher_is_better
    with pytest.raises(KeyError):
        get_target("fig99")


def test_duplicate_target_rejected(fake_target):
    with pytest.raises(ValueError):
        register_target(fake_target)


def test_matrix_points_carry_components_and_stable_kwargs():
    target = get_target("fig08")
    matrix = loo_matrix(SystemConfig("ioctopus"), names=["ddio"])
    points = matrix_points(target, matrix, SHORT, seed=3,
                           accuracy="exact")
    assert points[0]["components"] == {}
    assert points[1]["components"] == {"ddio": False}
    for point in points:
        assert point["config"] == "ioctopus"
        assert point["packet_bytes"] == 64
        assert point["seed"] == 3
        json.dumps(point)  # sweep-cache representable


def test_ranking_importance_and_harmful_flag(fake_target):
    report = run_ablation("fake", duration_ns=SHORT)
    assert report["baseline"]["value"] == 100.0
    rows = {tuple(row["components"]): row for row in report["rows"]}
    ddio = rows[("ddio",)]
    xps = rows[("xps",)]
    assert ddio["rank"] == 1
    assert ddio["importance"] == 25.0
    assert not ddio["harmful"] and not ddio["inert"]
    assert xps["harmful"]
    assert xps["rank"] == len(report["rows"])  # worst importance
    inert = rows[("arfs_migration",)]
    assert inert["inert"] and inert["importance"] == 0.0
    # One LOO row per registered component.
    assert len(report["rows"]) == len(component_names())


def test_lower_is_better_flips_importance(fake_target):
    flipped = AblationTarget(
        figure="fake-lat", metric="metric", unit="ns",
        higher_is_better=False, fn=fake_point,
        base_params=(("config", "ioctopus"),), result_key="metric",
        description="synthetic latency fixture")
    register_target(flipped)
    try:
        report = run_ablation("fake-lat", duration_ns=SHORT)
        rows = {tuple(row["components"]): row for row in report["rows"]}
        # Latency *dropping* 25 when ddio is removed would mean ddio
        # hurt latency: harmful under lower-is-better.
        assert rows[("ddio",)]["harmful"]
        assert rows[("xps",)]["importance"] == 10.0
        assert rows[("xps",)]["rank"] == 1
    finally:
        del ablate._TARGETS["fake-lat"]


def test_pairwise_rows(fake_target):
    report = run_ablation("fake", duration_ns=SHORT, pairwise=True,
                          components=["ddio", "xps"])
    labels = [tuple(row["components"]) for row in report["rows"]]
    assert ("ddio", "xps") in labels
    pair = next(row for row in report["rows"]
                if tuple(row["components"]) == ("ddio", "xps"))
    assert pair["value"] == 85.0


def test_rows_carry_stable_run_ids(fake_target):
    report = run_ablation("fake", duration_ns=SHORT)
    expected = {tuple(c.disabled_components()): c.run_id()
                for c in loo_matrix(SystemConfig("ioctopus"))}
    assert report["baseline"]["run_id"] == expected[()]
    for row in report["rows"]:
        assert row["run_id"] == expected[tuple(row["components"])]


def test_rerun_is_pure_cache_hits(fake_target, tmp_path):
    configure(cache_dir=str(tmp_path))
    first = run_ablation("fake", duration_ns=SHORT)
    second = run_ablation("fake", duration_ns=SHORT)
    assert first["cache"]["hits"] == 0
    assert second["cache"]["hit_rate"] == 1.0
    assert [row["value"] for row in second["rows"]] == \
        [row["value"] for row in first["rows"]]


def test_real_matrix_row_through_simulator():
    """One genuine fluid-tier fig08 row end to end: removing ddio must
    rank first and be flagged load-bearing."""
    report = run_ablation("fig08", accuracy="fluid", duration_ns=SHORT,
                          components=["ddio", "xps"])
    assert report["rows"][0]["components"] == ["ddio"]
    assert report["rows"][0]["importance"] > 0
    assert not report["rows"][0]["inert"]


def test_render_text_and_json(fake_target):
    report = run_ablation("fake", duration_ns=SHORT)
    text = render_text(report)
    assert "HARMFUL" in text
    assert "load-bearing" in text
    assert report["baseline"]["run_id"] in text
    parsed = json.loads(render_json(report))
    assert parsed["figure"] == "fake"
    assert len(parsed["rows"]) == len(report["rows"])


def test_cli_dispatch_and_report_file(fake_target, tmp_path, capsys):
    from repro.experiments.cli import main
    out = tmp_path / "report.json"
    code = main(["ablate", "--figure", "fake", "--json",
                 "--out", str(out)])
    assert code == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed["figure"] == "fake"
    assert json.loads(out.read_text())["figure"] == "fake"


def test_cli_unknown_figure_fails_cleanly(capsys):
    from repro.experiments.ablate import main
    assert main(["--figure", "fig99"]) == 2
    assert "fig99" in capsys.readouterr().err
