"""Fluid accuracy tier: closed-form steady-interval service.

Contracts, mirroring ``tests/experiments/test_batching.py`` one tier up:

(a) ``accuracy="fluid"`` lands every fig06/fig08/fig10 quick-point
    metric within 2% relative error of exact.
(b) Fluid cuts simulated events per packet below even the adaptive
    tier on the fig08 pktgen point — the interval engine is doing work
    coalescing alone does not.
(c) A mid-run ``BandwidthServer.set_rate`` (fault throttle, PCIe
    retraining) de-coalesces every fluid flow through the global rate
    epoch, then the flow re-settles.
(d) Coarse-grained flows (per-burst wall above
    ``FLUID_COALESCE_WALL_NS``) are never fluid-coalesced: their
    burst-phase contention is part of the exact signal.
"""

from __future__ import annotations

import pytest

from repro.core import Testbed
from repro.experiments.fig10_memcached import run_memcached
from repro.experiments.runners import (run_pktgen, run_tcp_stream,
                                       run_until_converged, warmup_of)
from repro.sim.fluid import fluid_region
from repro.workloads.pktgen import Pktgen
from repro.workloads.train import FLUID_COALESCE_WALL_NS, FluidGovernor

D = 10_000_000  # the "quick" fidelity duration


def assert_within(exact: dict, fluid: dict, rel: float = 0.02) -> None:
    assert set(exact) == set(fluid)
    for key, want in exact.items():
        got = fluid[key]
        if want == 0:
            assert got == pytest.approx(0.0, abs=1e-9), key
        else:
            assert got == pytest.approx(want, rel=rel), key


# ---------------------------------------------------------- (a) fidelity

@pytest.mark.parametrize("config,message_bytes", [
    ("remote", 4096), ("ioctopus", 65536)])
def test_fluid_matches_exact_fig06_points(config, message_bytes):
    exact = run_tcp_stream(config, message_bytes, "rx", D, seed=0,
                           accuracy="exact")
    fluid = run_tcp_stream(config, message_bytes, "rx", D, seed=0,
                           accuracy="fluid")
    assert_within(exact, fluid)


@pytest.mark.parametrize("config,packet_bytes", [
    ("remote", 256), ("ioctopus", 1500)])
def test_fluid_matches_exact_fig08_points(config, packet_bytes):
    exact = run_pktgen(config, packet_bytes, D, seed=0, accuracy="exact")
    fluid = run_pktgen(config, packet_bytes, D, seed=0, accuracy="fluid")
    assert_within(exact, fluid)


def test_fluid_matches_exact_fig10_point():
    duration = 3 * D
    exact = run_memcached("remote", 0.5, duration, accuracy="exact")
    fluid = run_memcached("remote", 0.5, duration, accuracy="fluid")
    assert_within(exact, fluid)


# ------------------------------------------------------ (b) event count

def test_fluid_cuts_events_below_adaptive():
    counts = {}
    for accuracy in ("exact", "adaptive", "fluid"):
        testbed = Testbed("remote", seed=0, accuracy=accuracy)
        workload = Pktgen(testbed.server, testbed.server_core(0), 256, D,
                          warmup_of(D))
        if testbed.env.adaptive:
            run_until_converged(testbed, D, workload.meter.mpps)
        else:
            testbed.run(D + D // 5)
        packets = workload.meter.messages_total
        assert packets > 0
        counts[accuracy] = testbed.env.events_processed / packets
    assert counts["adaptive"] < counts["exact"]
    assert counts["fluid"] < 0.5 * counts["adaptive"]


def test_fluid_grants_steady_intervals():
    testbed = Testbed("remote", seed=0, accuracy="fluid")
    workload = Pktgen(testbed.server, testbed.server_core(0), 256, D,
                      warmup_of(D))
    testbed.run(D)
    region = fluid_region(testbed.env)
    assert region.flows >= 1
    assert region.steady_intervals > 0
    assert region.bursts_advanced > region.steady_intervals
    assert workload.governor.max_bursts_seen > 1


# ---------------------------------------------------- (c) rate changes

def test_set_rate_decoalesces_fluid_flows():
    testbed = Testbed("remote", seed=0, accuracy="fluid")
    env = testbed.env
    workload = Pktgen(testbed.server, testbed.server_core(0), 256, D,
                      warmup_of(D))
    qpi = testbed.server.machine.interconnect.links()[0].server

    def throttler():
        yield env.timeout(D // 2)
        qpi.set_rate(qpi.bytes_per_sec / 2)

    env.process(throttler(), name="throttler")
    testbed.run(D)
    governor = workload.governor
    region = fluid_region(env)
    # Trains had grown, the epoch bump reset them, and the flow then
    # re-settled and kept producing.
    assert governor.max_bursts_seen > 1
    assert governor.decoalesce_events >= 1
    assert region.invalidations >= 1
    assert workload.meter.messages_total > 0


# ------------------------------------------------- (d) coarse-flow gate

def test_coarse_flows_never_fluid_coalesce():
    env = Testbed("remote", seed=0, accuracy="fluid").env
    governor = FluidGovernor(fluid_region(env))
    token = ("flow",)
    # A memcached-like flow: stable, but each burst is a ~300 us
    # transaction — above the coalescing wall gate.
    for _ in range(5):
        k = governor.plan(token)
        governor.observe(300_000 * k, k)
    assert governor.plan(token) == 1
    # A pktgen-like flow on a fresh governor coalesces fine.
    fine = FluidGovernor(fluid_region(env))
    for _ in range(5):
        k = fine.plan(token)
        fine.observe(int(FLUID_COALESCE_WALL_NS * 0.2) * k, k)
    assert fine.plan(token) > 1


def test_exact_mode_never_enters_fluid_intervals():
    testbed = Testbed("remote", seed=0, accuracy="exact")
    Pktgen(testbed.server, testbed.server_core(0), 256, D, warmup_of(D))
    testbed.run(D)
    region = getattr(testbed.env, "_fluid_region", None)
    assert region is None or region.steady_intervals == 0
    assert testbed.env.fluid_span_ns == 0
