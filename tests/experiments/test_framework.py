"""Tests for the experiment framework, registry and CLI plumbing."""

import pytest

from repro.experiments import all_experiment_names, get_experiment
from repro.experiments.base import (
    DURATIONS_MS,
    Experiment,
    ExperimentResult,
    register,
)
from repro.experiments.cli import build_parser, main


def test_result_add_checks_arity():
    result = ExperimentResult("x", "ref", ["a", "b"])
    result.add(1, 2)
    with pytest.raises(ValueError):
        result.add(1)


def test_result_column_and_dicts():
    result = ExperimentResult("x", "ref", ["a", "b"])
    result.add(1, 2)
    result.add(3, 4)
    assert result.column("b") == [2, 4]
    assert result.as_dicts() == [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
    with pytest.raises(KeyError):
        result.column("missing")


def test_result_table_contains_title_and_notes():
    result = ExperimentResult("demo", "Fig X", ["v"], notes="hello")
    result.add(42)
    text = result.table()
    assert "demo (Fig X)" in text
    assert "42" in text
    assert "hello" in text


def test_experiment_duration_fidelities():
    experiment = Experiment()
    for fidelity, ms in DURATIONS_MS.items():
        assert experiment.duration_ns(fidelity) == ms * 1_000_000
    with pytest.raises(ValueError):
        experiment.duration_ns("extreme")


def test_base_experiment_run_is_abstract():
    with pytest.raises(NotImplementedError):
        Experiment().run()


def test_register_rejects_duplicates():
    with pytest.raises(ValueError):
        @register
        class Duplicate(Experiment):
            name = "fig02"  # already registered


def test_registry_instances_are_fresh():
    assert get_experiment("fig02") is not get_experiment("fig02")


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in all_experiment_names():
        assert name in out


def test_cli_runs_named_experiment(capsys):
    assert main(["fig02"]) == 0
    assert "nic_single_gbps" in capsys.readouterr().out


def test_cli_requires_some_action(capsys):
    assert main([]) == 2


def test_cli_unknown_experiment():
    with pytest.raises(KeyError):
        main(["fig99"])


def test_cli_parser_fidelity_choices():
    parser = build_parser()
    args = parser.parse_args(["fig02", "--fidelity", "quick"])
    assert args.fidelity == "quick"
    with pytest.raises(SystemExit):
        parser.parse_args(["--fidelity", "warp"])
