"""Tests for the NUMA-aware allocator."""

import pytest

from repro.os_model.alloc import (
    PAGE,
    NumaAllocator,
    OutOfMemoryError,
)
from repro.topology import dell_r730, dell_r730_spec
from repro.topology.constants import CpuSpec, InterconnectSpec, MachineSpec, MemorySpec
from repro.topology.machine import Machine
from repro.units import GB, KB, MB


@pytest.fixture
def allocator():
    return NumaAllocator(dell_r730())


def tiny_machine():
    spec = MachineSpec(
        name="tiny", num_nodes=2,
        cpu=CpuSpec(cores=2, ghz=2.0, llc_bytes=1 * MB),
        memory=MemorySpec(bytes_per_sec=1e9, capacity_bytes=1 * MB),
        interconnect=InterconnectSpec(bytes_per_sec_per_direction=1e9))
    return Machine(spec)


def test_local_policy_places_on_cpu_node(allocator):
    region = allocator.alloc("buf", 64 * KB, policy="local", cpu_node=1)
    assert region.home_node == 1


def test_node_policy_requires_and_uses_target(allocator):
    region = allocator.alloc("buf", 64 * KB, policy="node", target_node=0,
                             cpu_node=1)
    assert region.home_node == 0
    with pytest.raises(ValueError):
        allocator.alloc("buf", 64 * KB, policy="node")


def test_interleave_round_robins_nodes(allocator):
    nodes = [allocator.alloc(f"b{i}", 64 * KB,
                             policy="interleave").home_node
             for i in range(4)]
    assert nodes == [0, 1, 0, 1]


def test_preferred_falls_back_when_local_full():
    allocator = NumaAllocator(tiny_machine())
    allocator.alloc("hog", 1 * MB, policy="node", target_node=0)
    region = allocator.alloc("spill", 64 * KB, policy="preferred",
                             cpu_node=0)
    assert region.home_node == 1


def test_allocation_rounded_to_pages(allocator):
    region = allocator.alloc("b", 100, policy="local", cpu_node=0)
    assert region.allocated_bytes == PAGE
    assert allocator.allocated[0] == PAGE


def test_out_of_memory_raises():
    allocator = NumaAllocator(tiny_machine())
    allocator.alloc("a", 1 * MB, policy="node", target_node=0)
    with pytest.raises(OutOfMemoryError):
        allocator.alloc("b", 64 * KB, policy="node", target_node=0)


def test_free_returns_memory(allocator):
    region = allocator.alloc("b", 1 * MB, policy="local", cpu_node=0)
    used = allocator.allocated[0]
    allocator.free(region)
    assert allocator.allocated[0] == used - region.allocated_bytes
    with pytest.raises(ValueError):
        allocator.free(region)


def test_migrate_moves_home_node(allocator):
    region = allocator.alloc("b", 1 * MB, policy="local", cpu_node=0)
    moved = allocator.migrate(region, 1)
    assert moved.home_node == 1
    assert allocator.allocated[0] == 0
    assert allocator.allocated[1] == region.allocated_bytes


def test_migrate_same_node_is_noop(allocator):
    region = allocator.alloc("b", 64 * KB, policy="local", cpu_node=0)
    assert allocator.migrate(region, 0) is region


def test_invalid_args(allocator):
    with pytest.raises(ValueError):
        allocator.alloc("b", 0)
    with pytest.raises(ValueError):
        allocator.alloc("b", 100, policy="random")


def test_node_pressure(allocator):
    assert allocator.node_pressure(0) == 0.0
    allocator.alloc("b", allocator.capacity[0] // 2, policy="node",
                    target_node=0)
    assert allocator.node_pressure(0) == pytest.approx(0.5, rel=0.01)
