"""Tests for the netdevice driver layer."""

import pytest

from repro.core import Testbed
from repro.nic.packet import Flow
from repro.os_model.driver import StandardDriver


def test_standard_driver_validates_pf_id():
    testbed = Testbed("local")
    with pytest.raises(ValueError):
        StandardDriver(testbed.server.machine, testbed.server.nic, pf_id=5)


def test_standard_driver_has_queue_pair_per_core():
    testbed = Testbed("local")
    driver = testbed.server.driver
    machine = testbed.server.machine
    for core in machine.cores:
        assert driver.rx_queue_for_core(core).core is core
        assert driver.tx_queue_for_core(core).core is core


def test_standard_driver_all_queues_use_its_pf():
    testbed = Testbed("remote")
    driver = testbed.server.driver
    for queue in driver.queues.rx + driver.queues.tx:
        assert queue.pf is testbed.server.nic.pf(0)


def test_standard_driver_queue_memory_is_core_local():
    testbed = Testbed("local")
    driver = testbed.server.driver
    for core in testbed.server.machine.cores:
        rxq = driver.rx_queue_for_core(core)
        assert rxq.ring.home_node == core.node_id
        assert rxq.buffers.home_node == core.node_id


def test_standard_driver_dst_mac_matches_pf():
    testbed = Testbed("local")
    driver = testbed.server.driver
    assert driver.dst_mac() == testbed.server.nic.mac_for_pf(0)


def test_steer_rx_first_time_immediate():
    testbed = Testbed("local")
    driver = testbed.server.driver
    flow = Flow.make(0)
    core = testbed.server_core(2)
    driver.steer_rx(flow, core)  # no existing rule -> applied now
    queue = testbed.server.nic.firmware.arfs[0].lookup(flow)
    assert queue.core is core


def test_steer_rx_resteer_is_deferred():
    testbed = Testbed("local")
    driver = testbed.server.driver
    firmware = testbed.server.nic.firmware
    flow = Flow.make(0)
    a, b = testbed.server_core(0), testbed.server_core(1)
    driver.steer_rx(flow, a, immediate=True)
    driver.rx_queue_for_core(a).outstanding = 10
    driver.steer_rx(flow, b)
    assert firmware.arfs[0].lookup(flow).core is a  # not yet
    testbed.run(testbed.env.now + 10_000_000)
    assert firmware.arfs[0].lookup(flow).core is b


def test_drain_delay_scales_with_outstanding():
    testbed = Testbed("local")
    driver = testbed.server.driver
    queue = driver.rx_queue_for_core(testbed.server_core(0))
    queue.outstanding = 0
    short = driver._drain_delay_ns(queue)
    queue.outstanding = 1000
    assert driver._drain_delay_ns(queue) > short


def test_queue_drained_flag():
    testbed = Testbed("local")
    queue = testbed.server.driver.rx_queue_for_core(testbed.server_core(0))
    assert queue.is_drained()
    queue.outstanding = 5
    assert not queue.is_drained()


def test_unconfigured_driver_gives_clear_error():
    from repro.os_model.driver import NetDriver
    testbed = Testbed("local")
    bare = NetDriver(testbed.server.machine, testbed.server.nic)
    core = testbed.server_core(0)
    with pytest.raises(RuntimeError, match="no queues configured"):
        bare.rx_queue_for_core(core)
    with pytest.raises(RuntimeError, match="no queues configured"):
        bare.tx_queue_for_core(core)


def test_call_with_retry_succeeds_after_transient_failure():
    from repro.sim.errors import DeviceGoneError
    testbed = Testbed("local")
    driver = testbed.server.driver
    attempts = []

    def flaky():
        attempts.append(testbed.env.now)
        if len(attempts) < 3:
            raise DeviceGoneError("gone")
        return "ok"

    outcome = {}

    def body():
        outcome["result"] = yield from driver.call_with_retry(
            flaky, base_backoff_ns=2_000)

    testbed.env.process(body(), name="retry-test")
    testbed.run(1_000_000)
    assert outcome["result"] == "ok"
    assert driver.retries == 2
    # Exponential backoff: 2 us after the first failure, 4 us after the
    # second.
    assert attempts == [0, 2_000, 6_000]


def test_call_with_retry_gives_up_with_timeout_error():
    from repro.sim.errors import DeviceGoneError, DeviceTimeoutError

    testbed = Testbed("local")
    driver = testbed.server.driver

    def always_dead():
        raise DeviceGoneError("still gone")

    failures = {}

    def body():
        try:
            yield from driver.call_with_retry(always_dead, max_attempts=3)
        except DeviceTimeoutError as error:
            failures["error"] = error
            failures["at"] = testbed.env.now

    testbed.env.process(body(), name="retry-timeout-test")
    testbed.run(1_000_000)
    assert "still gone" in str(failures["error"])
    assert failures["at"] == 2_000 + 4_000  # two backoffs, then give up
    assert driver.retries == 2


def test_call_with_retry_rejects_bad_max_attempts():
    testbed = Testbed("local")
    with pytest.raises(ValueError):
        list(testbed.server.driver.call_with_retry(lambda: 1,
                                                   max_attempts=0))
