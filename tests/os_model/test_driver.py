"""Tests for the netdevice driver layer."""

import pytest

from repro.core import Testbed
from repro.nic.packet import Flow
from repro.os_model.driver import StandardDriver


def test_standard_driver_validates_pf_id():
    testbed = Testbed("local")
    with pytest.raises(ValueError):
        StandardDriver(testbed.server.machine, testbed.server.nic, pf_id=5)


def test_standard_driver_has_queue_pair_per_core():
    testbed = Testbed("local")
    driver = testbed.server.driver
    machine = testbed.server.machine
    for core in machine.cores:
        assert driver.rx_queue_for_core(core).core is core
        assert driver.tx_queue_for_core(core).core is core


def test_standard_driver_all_queues_use_its_pf():
    testbed = Testbed("remote")
    driver = testbed.server.driver
    for queue in driver.queues.rx + driver.queues.tx:
        assert queue.pf is testbed.server.nic.pf(0)


def test_standard_driver_queue_memory_is_core_local():
    testbed = Testbed("local")
    driver = testbed.server.driver
    for core in testbed.server.machine.cores:
        rxq = driver.rx_queue_for_core(core)
        assert rxq.ring.home_node == core.node_id
        assert rxq.buffers.home_node == core.node_id


def test_standard_driver_dst_mac_matches_pf():
    testbed = Testbed("local")
    driver = testbed.server.driver
    assert driver.dst_mac() == testbed.server.nic.mac_for_pf(0)


def test_steer_rx_first_time_immediate():
    testbed = Testbed("local")
    driver = testbed.server.driver
    flow = Flow.make(0)
    core = testbed.server_core(2)
    driver.steer_rx(flow, core)  # no existing rule -> applied now
    queue = testbed.server.nic.firmware.arfs[0].lookup(flow)
    assert queue.core is core


def test_steer_rx_resteer_is_deferred():
    testbed = Testbed("local")
    driver = testbed.server.driver
    firmware = testbed.server.nic.firmware
    flow = Flow.make(0)
    a, b = testbed.server_core(0), testbed.server_core(1)
    driver.steer_rx(flow, a, immediate=True)
    driver.rx_queue_for_core(a).outstanding = 10
    driver.steer_rx(flow, b)
    assert firmware.arfs[0].lookup(flow).core is a  # not yet
    testbed.run(testbed.env.now + 10_000_000)
    assert firmware.arfs[0].lookup(flow).core is b


def test_drain_delay_scales_with_outstanding():
    testbed = Testbed("local")
    driver = testbed.server.driver
    queue = driver.rx_queue_for_core(testbed.server_core(0))
    queue.outstanding = 0
    short = driver._drain_delay_ns(queue)
    queue.outstanding = 1000
    assert driver._drain_delay_ns(queue) > short


def test_queue_drained_flag():
    testbed = Testbed("local")
    queue = testbed.server.driver.rx_queue_for_core(testbed.server_core(0))
    assert queue.is_drained()
    queue.outstanding = 5
    assert not queue.is_drained()
