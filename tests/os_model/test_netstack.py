"""Tests for the network stack: sockets, XPS/ARFS semantics, data paths."""

import pytest

from repro.core import Testbed
from repro.nic.packet import Flow


@pytest.fixture(params=["local", "remote", "ioctopus"])
def testbed(request):
    return Testbed(request.param)


def idle(thread):
    while True:
        yield thread.sleep(10_000)


def open_server_socket(testbed, core=None):
    host = testbed.server
    core = core or testbed.server_core(0)
    thread = host.scheduler.spawn("app", idle, core=core)
    sock = host.stack.open_socket(thread, host.driver, Flow.make(0))
    return host, thread, sock


def test_socket_tx_queue_follows_owner_core(testbed):
    host, thread, sock = open_server_socket(testbed)
    assert sock.tx_queue.core is thread.core
    assert sock.app_buffer.home_node == thread.core.node_id


def test_open_socket_installs_steering(testbed):
    host, thread, sock = open_server_socket(testbed)
    queue, _ = host.nic.rx_deliver(sock.flow, sock.dst_mac, 1, 100)
    assert queue.core is thread.core


def test_rx_burst_returns_costs(testbed):
    host, thread, sock = open_server_socket(testbed)
    cpu, dev = host.stack.rx_burst(sock, 4, 1448)
    assert cpu > 0 and dev > 0
    assert sock.rx_messages == 4


def test_tx_burst_returns_costs(testbed):
    host, thread, sock = open_server_socket(testbed)
    cpu, dev = host.stack.tx_burst(sock, 2, 65536)
    assert cpu > 0 and dev > 0
    assert sock.tx_messages == 2


def test_burst_validates_message_count(testbed):
    host, thread, sock = open_server_socket(testbed)
    with pytest.raises(ValueError):
        host.stack.rx_burst(sock, 0, 100)
    with pytest.raises(ValueError):
        host.stack.tx_burst(sock, 0, 100)


def test_latency_paths_positive_and_rx_wire_optional(testbed):
    host, thread, sock = open_server_socket(testbed)
    tx = host.stack.latency_tx(sock, 64)
    rx_with = host.stack.latency_rx(sock, 64, charge_wire=True)
    rx_without = host.stack.latency_rx(sock, 64, charge_wire=False)
    assert tx > 0 and rx_with > 0
    assert rx_without <= rx_with


def test_migration_repoints_tx_queue(testbed):
    host, thread, sock = open_server_socket(testbed)
    old_queue = sock.tx_queue
    target = host.machine.cores_on_node(1 - thread.core.node_id)[5]
    host.scheduler.set_affinity(thread, target)
    assert sock.tx_queue is not old_queue
    assert sock.tx_queue.core is target


def test_migration_resteers_rx_after_drain(testbed):
    host, thread, sock = open_server_socket(testbed)
    target = host.machine.cores_on_node(1 - thread.core.node_id)[5]
    host.scheduler.set_affinity(thread, target)
    # The steering update is applied by the async kernel worker.
    host.machine.env.run(until=host.machine.env.now + 10_000_000)
    queue, _ = host.nic.rx_deliver(sock.flow, sock.dst_mac, 1, 100)
    assert queue.core is target


def test_close_removes_socket(testbed):
    host, thread, sock = open_server_socket(testbed)
    host.stack.close(sock)
    assert sock.closed
    # Migration after close must not touch the closed socket.
    target = host.machine.cores_on_node(1 - thread.core.node_id)[3]
    host.scheduler.set_affinity(thread, target)


def test_remote_rx_costs_more_cpu_than_local():
    costs = {}
    for config in ("local", "remote"):
        tb = Testbed(config)
        host, thread, sock = open_server_socket(tb)
        # Warm up (first burst misses everywhere), then measure.
        for _ in range(40):
            host.stack.rx_burst(sock, 1, 65536)
        cpu, _ = host.stack.rx_burst(sock, 1, 65536)
        costs[config] = cpu
    assert costs["remote"] > costs["local"] * 1.1


def test_ioctopus_rx_matches_local():
    costs = {}
    for config in ("local", "ioctopus"):
        tb = Testbed(config)
        host, thread, sock = open_server_socket(tb)
        for _ in range(40):
            host.stack.rx_burst(sock, 1, 65536)
        cpu, _ = host.stack.rx_burst(sock, 1, 65536)
        costs[config] = cpu
    assert costs["ioctopus"] == pytest.approx(costs["local"], rel=0.02)


def test_tx_placement_insensitive():
    costs = {}
    for config in ("local", "remote"):
        tb = Testbed(config)
        host, thread, sock = open_server_socket(tb)
        for _ in range(40):
            host.stack.tx_burst(sock, 1, 65536)
        cpu, _ = host.stack.tx_burst(sock, 1, 65536)
        costs[config] = cpu
    assert costs["remote"] < costs["local"] * 1.12
