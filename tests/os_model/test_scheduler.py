"""Tests for threads and the scheduler."""

import pytest

from repro.os_model.scheduler import Scheduler
from repro.topology import dell_r730


@pytest.fixture
def machine():
    return dell_r730()


@pytest.fixture
def sched(machine):
    return Scheduler(machine)


def idle_forever(thread):
    while True:
        yield thread.sleep(1000)


def test_spawn_places_thread_on_core(sched, machine):
    core = machine.core(3)
    thread = sched.spawn("worker", idle_forever, core=core)
    assert thread.core is core
    assert sched.thread_on_core(3) is thread


def test_spawn_default_takes_first_free_core(sched):
    t0 = sched.spawn("a", idle_forever)
    t1 = sched.spawn("b", idle_forever)
    assert t0.core.core_id == 0
    assert t1.core.core_id == 1


def test_spawn_refuses_double_booking(sched, machine):
    sched.spawn("a", idle_forever, core=machine.core(0))
    with pytest.raises(RuntimeError):
        sched.spawn("b", idle_forever, core=machine.core(0))
    sched.spawn("c", idle_forever, core=machine.core(0),
                allow_shared_core=True)


def test_compute_charges_core(sched, machine):
    def busy(thread):
        yield thread.compute(500)

    thread = sched.spawn("busy", busy, core=machine.core(0))
    machine.env.run()
    assert machine.core(0).busy_ns == 500
    assert not thread.is_alive


def test_overlap_charges_cpu_but_advances_max(sched, machine):
    times = []

    def body(thread):
        yield thread.overlap(100, 700)
        times.append(machine.env.now)

    sched.spawn("b", body, core=machine.core(0))
    machine.env.run()
    assert times == [700]
    assert machine.core(0).busy_ns == 100


def test_migration_moves_thread_and_fires_callbacks(sched, machine):
    events = []
    sched.on_migration(lambda t, old, new: events.append(
        (t.name, old.core_id, new.core_id)))
    thread = sched.spawn("mover", idle_forever, core=machine.core(0))
    sched.set_affinity(thread, machine.core(20))
    assert thread.core.core_id == 20
    assert thread.node_id == 1
    assert thread.migrations == 1
    assert events == [("mover", 0, 20)]
    assert sched.thread_on_core(0) is None
    assert sched.thread_on_core(20) is thread


def test_migration_to_same_core_is_noop(sched, machine):
    events = []
    sched.on_migration(lambda *a: events.append(a))
    thread = sched.spawn("t", idle_forever, core=machine.core(0))
    sched.set_affinity(thread, machine.core(0))
    assert events == []
    assert thread.migrations == 0


def test_migration_to_occupied_core_refused(sched, machine):
    sched.spawn("a", idle_forever, core=machine.core(1))
    thread = sched.spawn("b", idle_forever, core=machine.core(2))
    with pytest.raises(RuntimeError):
        sched.set_affinity(thread, machine.core(1))


def test_finished_thread_frees_core(sched, machine):
    def quick(thread):
        yield thread.compute(10)

    sched.spawn("q", quick, core=machine.core(5))
    machine.env.run()
    assert sched.thread_on_core(5) is None
    # The core can be reused now.
    sched.spawn("r", quick, core=machine.core(5))


def test_free_cores_shrinks(sched, machine):
    total = len(machine.cores)
    assert len(sched.free_cores()) == total
    sched.spawn("a", idle_forever)
    assert len(sched.free_cores()) == total - 1


def test_thread_cannot_start_twice(sched, machine):
    thread = sched.spawn("a", idle_forever, core=machine.core(0))
    with pytest.raises(RuntimeError):
        thread.start()


def test_thread_compute_rejects_negative(sched, machine):
    def bad(thread):
        yield thread.compute(-5)

    sched.spawn("bad", bad, core=machine.core(0))
    with pytest.raises(ValueError):
        machine.env.run()
