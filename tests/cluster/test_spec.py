"""FleetSpec: validation, epoch structure, health timeline, round trip."""

import pytest

from repro.cluster.spec import FLEET_BLOCKS, FleetSpec


def test_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        FleetSpec(servers=0)
    with pytest.raises(ValueError):
        FleetSpec(config="nonsense")
    with pytest.raises(ValueError):
        FleetSpec(connections=0)
    with pytest.raises(ValueError):
        FleetSpec(diurnal_amplitude=1.0)
    with pytest.raises(ValueError):
        FleetSpec(set_fraction=1.5)
    with pytest.raises(ValueError):
        FleetSpec(servers=4, server_down=(4, 1000))  # server out of range
    with pytest.raises(ValueError):
        FleetSpec(duration_ns=1000, pf_flap=(0, 1000, 10))  # at end
    with pytest.raises(ValueError):
        FleetSpec(pf_flap=(0, 10, 0))  # zero flap duration


def test_epoch_bounds_partition_the_run():
    spec = FleetSpec(duration_ns=10_000_001, epochs=7)
    bounds = spec.epoch_bounds()
    assert len(bounds) == 7
    assert bounds[0][0] == 0
    assert bounds[-1][1] == spec.duration_ns
    for (_, end), (start, _) in zip(bounds, bounds[1:]):
        assert end == start
    for e, (start, end) in enumerate(bounds):
        assert spec.epoch_of(start) == e
        assert spec.epoch_of(end - 1) == e
    assert spec.epoch_of(spec.duration_ns + 5) == 6


def test_block_sizes_sum_to_connections():
    spec = FleetSpec(connections=1_000_003)
    sizes = spec.block_sizes()
    assert len(sizes) == FLEET_BLOCKS
    assert sum(sizes) == 1_000_003
    assert max(sizes) - min(sizes) <= 1
    tiny = FleetSpec(connections=5)
    assert sum(tiny.block_sizes()) == 5


def test_death_semantics():
    spec = FleetSpec(servers=4, server_down=(1, 5_000_000))
    assert spec.death_ns(1) == 5_000_000
    assert spec.death_ns(0) is None

    # A serving-PF flap kills only when there is no failover path.
    flap = dict(servers=4, pf_flap=(2, 3_000_000, 1_000_000))
    remote = FleetSpec(config="remote", **flap)
    assert remote.death_ns(2) == 3_000_000
    assert remote.flap_for(2) is None
    ioct = FleetSpec(config="ioctopus", **flap)
    assert ioct.death_ns(2) is None
    assert ioct.flap_for(2) == (3_000_000, 1_000_000)
    assert ioct.flap_for(0) is None


def test_dict_round_trip_preserves_fault_tuples():
    spec = FleetSpec(servers=4, connections=1024,
                     server_down=(3, 7_000_000),
                     pf_flap=(1, 2_000_000, 500_000))
    clone = FleetSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.server_down == (3, 7_000_000)
    # to_dict is JSON-plain (tuples become lists).
    import json
    json.dumps(spec.to_dict())
