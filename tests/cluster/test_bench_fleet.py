"""The fleet row of the perf-regression harness: the determinism
cross-check, the scaling-efficiency gate, and the serial-wall baseline
comparison."""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
if str(REPO / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO / "benchmarks"))

from perf.harness import (  # noqa: E402
    FLEET_EFFICIENCY_FLOOR,
    bench_fleet,
    check_regression,
)


def fleet_cell(**overrides) -> dict:
    cell = {
        "servers": 8, "connections": 32768, "jobs": 4,
        "serial_s": 2.0, "parallel_s": 0.6,
        "fingerprint": "abcd" * 4, "fingerprint_match": True,
        "speedup": 3.33, "efficiency": 0.83,
    }
    cell.update(overrides)
    return cell


def test_gate_fails_on_fingerprint_mismatch():
    failures = check_regression(
        {"fleet": fleet_cell(fingerprint_match=False)}, baseline={})
    assert failures and "fingerprint" in failures[0]


def test_gate_fails_below_efficiency_floor():
    failures = check_regression(
        {"fleet": fleet_cell(efficiency=FLEET_EFFICIENCY_FLOOR / 2)},
        baseline={})
    assert failures and "efficiency" in failures[0]


def test_serial_fallback_skips_the_efficiency_gate_only():
    # A 1-CPU host time-shares the workers: efficiency is structurally
    # 1.0 with the marker, but the fingerprint gate still applies.
    cell = fleet_cell(efficiency=1.0, speedup=1.0, serial_fallback=True)
    assert check_regression({"fleet": cell}, baseline={}) == []
    cell = fleet_cell(efficiency=1.0, serial_fallback=True,
                      fingerprint_match=False)
    assert check_regression({"fleet": cell}, baseline={})


def test_serial_wall_regresses_against_baseline():
    baseline = {"fleet": fleet_cell(serial_s=1.0)}
    assert check_regression({"fleet": fleet_cell(serial_s=1.1)},
                            baseline) == []
    failures = check_regression({"fleet": fleet_cell(serial_s=1.5)},
                                baseline)
    assert failures and "serial" in failures[0]
    assert check_regression({}, baseline) == ["fleet bench missing "
                                              "from report"]


def test_bench_fleet_smoke_fingerprints_match():
    """The real bench on a tiny rack: inline and process-sharded runs
    must merge to the same fingerprint, and the cell must carry either
    a gated efficiency or the serial-fallback marker."""
    cell = bench_fleet(servers=2, connections=2048, jobs=2, repeats=1)
    assert cell["fingerprint_match"] is True
    assert cell["serial_s"] > 0 and cell["parallel_s"] > 0
    assert cell.get("serial_fallback") or "efficiency" in cell
