"""The deterministic L4 LB: balance, stability, bounded-lag health."""

from repro.cluster.lb import (alive_servers, assignment, blocks_for,
                              home_server, pick_counts)
from repro.cluster.spec import FLEET_BLOCKS, FleetSpec


def test_assignment_is_deterministic_and_total():
    spec = FleetSpec(servers=8, connections=65536)
    first = assignment(spec, 0)
    again = assignment(spec, 0)
    assert first == again
    assert set(first) == set(range(FLEET_BLOCKS))
    assert set(first.values()) <= set(range(8))


def test_pick_distribution_is_balanced():
    spec = FleetSpec(servers=8, connections=1_048_576)
    counts = pick_counts(spec, 0)
    assert sum(counts.values()) == spec.connections
    mean = spec.connections / spec.servers
    for server, count in counts.items():
        assert 0.6 * mean < count < 1.5 * mean, (
            f"server {server} carries {count} of mean {mean}")


def test_blocks_for_partitions_the_blocks():
    spec = FleetSpec(servers=5)
    seen = []
    for server in range(5):
        seen.extend(blocks_for(spec, server, 0))
    assert sorted(seen) == list(range(FLEET_BLOCKS))


def test_death_moves_only_the_dead_servers_blocks():
    base = FleetSpec(servers=6, connections=65536)
    down = FleetSpec(servers=6, connections=65536,
                     server_down=(2, 1))  # dead from (almost) the start
    before = assignment(base, 0)
    # Epoch 1 of the faulted fleet: server 2 is gone.
    after = assignment(down, 1)
    assert 2 not in set(after.values())
    moved = [b for b in range(FLEET_BLOCKS) if before[b] != after[b]]
    # Rendezvous hashing: only the dead server's blocks moved.
    assert moved == [b for b in range(FLEET_BLOCKS) if before[b] == 2]
    # And they spread over the survivors, not onto one scapegoat.
    new_homes = {after[b] for b in moved}
    assert len(new_homes) >= 3


def test_health_is_quantized_to_epochs():
    spec = FleetSpec(servers=4, duration_ns=8_000_000, epochs=4,
                     server_down=(1, 3_000_000))  # mid-epoch 1
    # The LB has not noticed within the death epoch...
    assert 1 in alive_servers(spec, 0)
    assert 1 in alive_servers(spec, 1)
    assert blocks_for(spec, 1, 1)
    # ...and reacts at the next epoch boundary.
    assert 1 not in alive_servers(spec, 2)
    assert blocks_for(spec, 1, 2) == []


def test_home_server_prefers_alive_set_members():
    for block in range(40):
        assert home_server(block, {3}) == 3
        assert home_server(block, {0, 1, 2}) in {0, 1, 2}
