"""Client-fleet generators: determinism, Zipf skew, churn, diurnal,
incast — everything the arrival planner consumes."""

import pytest

from repro.cluster.clients import (diurnal_factor, fleet_rng,
                                   generate_block, incast_schedule,
                                   server_seed)
from repro.cluster.spec import FleetSpec

SPEC = FleetSpec(servers=4, connections=32768, duration_ns=8_000_000,
                 epochs=4)


def test_block_regeneration_is_deterministic():
    first = generate_block(123, 7, 512, SPEC)
    again = generate_block(123, 7, 512, SPEC)
    assert first == again
    other_block = generate_block(123, 8, 512, SPEC)
    assert other_block != first
    other_seed = generate_block(124, 7, 512, SPEC)
    assert other_seed != first


def test_server_seeds_are_decorrelated():
    seeds = {server_seed(9, s) for s in range(16)}
    assert len(seeds) == 16
    assert server_seed(9, 0) == server_seed(9, 0)
    assert server_seed(10, 0) != server_seed(9, 0)


def test_zipf_weights_are_skewed_but_normalized():
    profile = generate_block(5, 0, 2048, SPEC)
    assert profile.total_weight == pytest.approx(2048)
    # Zipf: the hottest connection is far above the mean weight of 1.
    assert profile.top_weight > 5.0
    uniform = generate_block(
        5, 0, 2048, FleetSpec(connections=32768, zipf_s=0.0))
    assert uniform.top_weight == pytest.approx(1.0)


def test_slow_weight_tracks_slow_fraction():
    profile = generate_block(5, 3, 4096, SPEC)
    share = profile.slow_weight / profile.total_weight
    assert 0.2 * SPEC.slow_fraction < share < 5 * SPEC.slow_fraction
    none_slow = generate_block(
        5, 3, 4096, FleetSpec(connections=32768, slow_fraction=0.0))
    assert none_slow.slow_weight == 0.0


def test_churn_scales_with_lifetime():
    short = FleetSpec(connections=32768, duration_ns=8_000_000, epochs=4,
                      churn_lifetime_ns=1_000_000)
    long = FleetSpec(connections=32768, duration_ns=8_000_000, epochs=4,
                     churn_lifetime_ns=800_000_000)
    churny = generate_block(1, 0, 2048, short)
    stable = generate_block(1, 0, 2048, long)
    assert sum(churny.churn_by_epoch) > 10 * max(
        1, sum(stable.churn_by_epoch))
    assert len(churny.churn_by_epoch) == short.epochs
    assert sum(churny.churn_by_epoch) <= 2048


def test_diurnal_curve_spans_trough_to_peak():
    amp = SPEC.diurnal_amplitude
    assert diurnal_factor(SPEC, 0) == pytest.approx(1 - amp)
    assert diurnal_factor(SPEC, SPEC.duration_ns // 2) == (
        pytest.approx(1 + amp))
    flat = FleetSpec(connections=1024, diurnal_amplitude=0.0)
    assert diurnal_factor(flat, 12345) == 1.0


def test_incast_schedule_is_deterministic_and_in_bounds():
    first = incast_schedule(77, 2, SPEC)
    assert first == incast_schedule(77, 2, SPEC)
    assert first != incast_schedule(77, 3, SPEC)
    assert len(first) == SPEC.epochs
    for epoch, bursts in enumerate(first):
        start, end = SPEC.epoch_bounds()[epoch]
        assert len(bursts) == SPEC.incast_per_epoch
        for t, fanin in bursts:
            assert start <= t < end
            assert fanin == SPEC.incast_fanin


def test_fleet_rng_streams_are_order_independent():
    root = fleet_rng(3)
    a_then_b = (root.child("block-1").random(),
                root.child("block-2").random())
    root2 = fleet_rng(3)
    b_then_a = (root2.child("block-2").random(),
                root2.child("block-1").random())
    assert a_then_b == (b_then_a[1], b_then_a[0])
