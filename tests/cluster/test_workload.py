"""Fleet workload behaviour: open-loop queueing, incast spikes, the
slow-client starvation bound, accuracy-tier sanity."""

import pytest

from repro.cluster import FleetSpec, run_fleet_server
from repro.cluster.workload import FLEET_MAX_BATCH, SLOW_HOLD_CAP_NS
from repro.metrics.collect import LatencyDigest

BASE = dict(servers=2, connections=8192, duration_ns=4_000_000,
            epochs=4, conn_rate_tps=16.0)


def _digest(shard) -> LatencyDigest:
    return LatencyDigest.from_dict(shard["digest"])


def test_incast_bursts_create_queueing_tails():
    calm = run_fleet_server(
        0, FleetSpec(incast_per_epoch=0, **BASE).to_dict(), 3, "fluid")
    burst = run_fleet_server(
        0, FleetSpec(incast_fanin=256, **BASE).to_dict(), 3, "fluid")
    assert _digest(burst).percentile(99) > 10 * _digest(calm).percentile(99)
    # The burst is extra load, not replacement load.
    assert burst["planned"] > calm["planned"]


def test_slow_clients_hurt_but_are_bounded():
    quiet = dict(BASE, incast_per_epoch=0)
    fast = run_fleet_server(
        0, FleetSpec(slow_fraction=0.0, **quiet).to_dict(), 3, "fluid")
    slow = run_fleet_server(
        0, FleetSpec(slow_fraction=0.1, slow_factor=8.0,
                     **quiet).to_dict(), 3, "fluid")
    d_fast, d_slow = _digest(fast), _digest(slow)
    # Slow readers visibly stretch the distribution...
    assert d_slow.average() > 1.5 * d_fast.average()
    # ...but the hold cap and batch cap bound the starvation: the tail
    # cannot blow past the slow factor's share of the base service.
    assert d_slow.percentile(99) <= (
        (1 + 2 * 8.0) * d_fast.percentile(99)
        + FLEET_MAX_BATCH * SLOW_HOLD_CAP_NS)
    assert d_slow.percentile(99) < 3_000_000


def test_diurnal_peak_carries_more_arrivals():
    shard = run_fleet_server(
        0, FleetSpec(incast_per_epoch=0, diurnal_amplitude=0.5,
                     **BASE).to_dict(), 3, "fluid")
    counts = [shard["epoch_digests"][str(e)]["count"] for e in range(4)]
    # Epochs 1-2 straddle the mid-run peak; 0 and 3 the troughs.
    assert min(counts[1], counts[2]) > max(counts[0], counts[3])


def test_churn_is_counted_not_simulated():
    shard = run_fleet_server(0, FleetSpec(**BASE).to_dict(), 3, "fluid")
    assert sum(shard["churn_by_epoch"]) > 0
    # Replacement is instant: the active population never shrinks.
    assert all(c == shard["conns_by_epoch"][0]
               for c in shard["conns_by_epoch"])


def test_shard_determinism_per_accuracy_tier():
    spec = FleetSpec(servers=2, connections=2048, duration_ns=2_000_000,
                     epochs=2)
    for accuracy in ("exact", "fluid"):
        first = run_fleet_server(1, spec.to_dict(), 11, accuracy)
        again = run_fleet_server(1, spec.to_dict(), 11, accuracy)
        assert first == again, f"{accuracy} shard not deterministic"


def test_exact_and_fluid_agree_on_counts():
    spec = FleetSpec(servers=2, connections=2048, duration_ns=2_000_000,
                     epochs=2)
    exact = run_fleet_server(0, spec.to_dict(), 11, "exact")
    fluid = run_fleet_server(0, spec.to_dict(), 11, "fluid")
    # Conservation is tier-independent; latency percentiles may differ
    # within the fluid tier's tolerance.
    assert exact["planned"] == fluid["planned"]
    assert exact["served"] == fluid["served"]
    p99_exact = LatencyDigest.from_dict(exact["digest"]).percentile(99)
    p99_fluid = LatencyDigest.from_dict(fluid["digest"]).percentile(99)
    assert p99_fluid == pytest.approx(p99_exact, rel=0.25)
