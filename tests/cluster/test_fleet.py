"""Fleet end-to-end: determinism golden, jobs-independence, failover
claims, merged observability."""

import pytest

from repro.cluster import FleetSpec, run_fleet, run_fleet_server
from repro.experiments import sweep

#: The pinned 4-server quick fleet (fluid tier).  Any change to the
#: fleet planner, the client generators, the workload service loop or
#: the simulator's timing shows up here first — regenerate deliberately
#: with tools/fleet_smoke.py --print-fingerprint.
GOLDEN_SPEC = dict(servers=4, connections=8192, duration_ns=4_000_000,
                   epochs=4)
GOLDEN_SEED = 7
GOLDEN_FINGERPRINT = (
    "9b3a16025e82bbf09782d21a6aa212a401f8f994970cf641ff647c477dacf9b0")


@pytest.fixture(scope="module")
def golden_fleet():
    return run_fleet(FleetSpec(**GOLDEN_SPEC), master_seed=GOLDEN_SEED,
                     accuracy="fluid")


def test_golden_fleet_fingerprint(golden_fleet):
    assert golden_fleet.fingerprint() == GOLDEN_FINGERPRINT


def test_fleet_is_deterministic_across_repeats(golden_fleet):
    again = run_fleet(FleetSpec(**GOLDEN_SPEC), master_seed=GOLDEN_SEED,
                      accuracy="fluid")
    assert again.fingerprint() == golden_fleet.fingerprint()
    assert again.servers == golden_fleet.servers


def test_fleet_fingerprint_independent_of_jobs(golden_fleet):
    """The headline determinism claim: process sharding is invisible.

    jobs=2 genuinely fans out (the fleet executor's own predicate skips
    the single-CPU serial fallback), so this exercises real worker
    processes and compares against the inline run bit for bit.
    """
    try:
        parallel = run_fleet(FleetSpec(**GOLDEN_SPEC),
                             master_seed=GOLDEN_SEED, accuracy="fluid",
                             jobs=2)
    finally:
        sweep.shutdown_pool()
    assert parallel.fingerprint() == golden_fleet.fingerprint()


def test_transaction_conservation(golden_fleet):
    assert golden_fleet.planned == (golden_fleet.served
                                    + golden_fleet.lost)
    assert golden_fleet.lost == 0
    assert golden_fleet.digest.count == golden_fleet.served
    assert golden_fleet.served > 0
    assert sum(d.count for d in golden_fleet.epoch_digests.values()) == (
        golden_fleet.served)


def test_pf_flap_survives_under_ioctopus_only():
    base = dict(servers=2, connections=4096, duration_ns=4_000_000,
                epochs=4, pf_flap=(0, 1_500_000, 1_000_000))
    ioct = run_fleet(FleetSpec(config="ioctopus", **base),
                     master_seed=1, accuracy="fluid")
    assert ioct.dead_servers() == []
    assert ioct.lost == 0
    # The team driver really failed over and recovered (2 fault events).
    assert ioct.servers[0]["failover_events"] == 2

    remote = run_fleet(FleetSpec(config="remote", **base),
                       master_seed=1, accuracy="fluid")
    assert remote.dead_servers() == [0]
    assert remote.lost > 0
    assert remote.servers[0]["died_at"] == 1_500_000
    # The survivors inherit the dead server's blocks next epoch.
    later = remote.servers[1]["conns_by_epoch"]
    assert later[-1] > later[0]


def test_server_down_truncates_and_reroutes():
    spec = FleetSpec(servers=3, connections=4096, duration_ns=4_000_000,
                     epochs=4, server_down=(1, 2_000_000))
    fleet = run_fleet(spec, master_seed=2, accuracy="fluid")
    assert fleet.dead_servers() == [1]
    assert fleet.lost > 0
    dead = fleet.servers[1]
    assert dead["served"] < dead["planned"]
    # Post-death epochs route nothing to the corpse.
    assert dead["conns_by_epoch"][-1] == 0


def test_merged_registry_namespaces_and_rollups(golden_fleet):
    registry = golden_fleet.registry()
    names = registry.names()
    for server in range(4):
        assert any(name.startswith(f"srv{server}.") for name in names)
    values = registry.collect()
    assert values["fleet.txn.served"] == golden_fleet.served
    assert values["fleet.dead_servers"] == 0
    assert values["fleet.latency.p99_ns"] == golden_fleet.percentile(99)


def test_prometheus_export_carries_server_labels(golden_fleet):
    text = golden_fleet.prometheus()
    assert 'server="0"' in text
    assert 'server="3"' in text
    assert "repro_fleet_txn_served" in text
    # Per-server samples are labelled, fleet rollups are not.
    for line in text.splitlines():
        if line.startswith("repro_fleet_"):
            assert "server=" not in line


def test_shards_ship_series_and_obs(golden_fleet):
    shard = golden_fleet.servers[0]
    assert shard["obs"], "obs collect must ship with the shard"
    assert "srv.qpi.0to1.util" in shard["series"]
    assert len(shard["series"]["srv.qpi.0to1.util"]) > 1


def test_single_server_result_is_plain_json():
    import json
    spec = FleetSpec(servers=2, connections=1024, duration_ns=2_000_000,
                     epochs=2)
    shard = run_fleet_server(0, spec.to_dict(), master_seed=0,
                             accuracy="fluid")
    json.dumps(shard)  # the sweep cache contract
    assert shard["planned"] == shard["served"] + shard["lost"]
