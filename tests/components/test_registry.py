"""The component registry: contents, metadata, and declarations."""

import pytest

from repro.components import (
    LAYERS,
    Component,
    all_components,
    component_names,
    default_states,
    fault_safe_component_names,
    get_component,
)

EXPECTED = ("ddio", "arfs_migration", "xps", "mpfs_fast_failover",
            "interrupt_moderation", "train_coalescing",
            "no_reorder_resteer")


def test_registry_contains_the_paper_components():
    assert component_names() == EXPECTED


def test_every_component_defaults_on():
    assert default_states() == {name: True for name in EXPECTED}


def test_components_declare_valid_layers():
    for component in all_components():
        assert component.layer in LAYERS
        assert component.paper_ref
        assert component.cost_note


def test_unsafe_components_are_excluded_from_fault_safe_set():
    safe = fault_safe_component_names()
    assert "no_reorder_resteer" not in safe
    assert "mpfs_fast_failover" not in safe
    assert set(safe) == set(EXPECTED) - {"no_reorder_resteer",
                                         "mpfs_fast_failover"}


def test_get_component_unknown_raises():
    with pytest.raises(KeyError):
        get_component("warp_drive")


def test_component_rejects_bogus_layer():
    with pytest.raises(ValueError):
        Component(name="x", layer="cloud", paper_ref="", default=True,
                  cost_note="", apply=lambda hosts, env: None,
                  remove=lambda hosts, env: None)
