"""SystemConfig: frozen value semantics, run IDs, matrices."""

import json
import subprocess
import sys

import pytest

from repro.components import (
    SystemConfig,
    as_system_config,
    component_names,
    loo_matrix,
)


def test_default_config_is_ioctopus_with_no_overrides():
    config = SystemConfig()
    assert config.preset == "ioctopus"
    assert config.overrides == ()
    assert config.is_default()
    assert config.label() == "ioctopus"


def test_hashable_and_value_equal():
    a = SystemConfig("remote", (("ddio", False), ("xps", False)))
    b = SystemConfig("remote", (("xps", False), ("ddio", False)))
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_invalid_preset_and_overrides_rejected():
    with pytest.raises(ValueError):
        SystemConfig("sideways")
    with pytest.raises(ValueError):
        SystemConfig("local", (("warp_drive", False),))
    with pytest.raises(ValueError):
        SystemConfig("local", (("ddio", False), ("ddio", True)))
    with pytest.raises(ValueError):
        SystemConfig("local", (("ddio", 0),))


def test_without_and_enabled():
    config = SystemConfig("ioctopus").without("ddio")
    assert not config.enabled("ddio")
    assert config.enabled("xps")
    assert config.disabled_components() == ("ddio",)
    assert config.label() == "ioctopus-ddio"


def test_round_trips_through_dict():
    config = SystemConfig("remote").without("xps", "ddio")
    again = SystemConfig.from_dict(config.to_dict())
    assert again == config
    assert as_system_config(config.to_dict()) == config


def test_as_system_config_coercions():
    assert as_system_config(None) == SystemConfig()
    assert as_system_config("remote").preset == "remote"
    config = SystemConfig("local")
    assert as_system_config(config) is config
    with pytest.raises(TypeError):
        as_system_config(42)


def test_run_id_is_content_hash():
    a = SystemConfig("ioctopus").without("ddio")
    b = SystemConfig("ioctopus", (("ddio", False),))
    assert a.run_id() == b.run_id()
    assert a.run_id() != SystemConfig("ioctopus").run_id()
    assert a.run_id() != SystemConfig("remote").without("ddio").run_id()


def test_run_ids_stable_across_processes():
    """Another interpreter generating the same leave-one-out matrix must
    produce the same run IDs (no hash randomisation, no process state)."""
    matrix = loo_matrix(SystemConfig("ioctopus"))
    script = (
        "import json\n"
        "from repro.components import SystemConfig, loo_matrix\n"
        "ids = [c.run_id() for c in loo_matrix(SystemConfig('ioctopus'))]\n"
        "print(json.dumps(ids))\n")
    out = subprocess.run([sys.executable, "-c", script],
                         capture_output=True, text=True, check=True)
    assert json.loads(out.stdout) == [c.run_id() for c in matrix]


def test_loo_matrix_shape():
    base = SystemConfig("ioctopus")
    matrix = loo_matrix(base)
    n = len(component_names())
    assert len(matrix) == 1 + n
    assert matrix[0] == base
    assert all(len(c.disabled_components()) == 1 for c in matrix[1:])


def test_loo_matrix_pairwise_and_subset():
    base = SystemConfig("ioctopus")
    matrix = loo_matrix(base, names=["ddio", "xps", "arfs_migration"],
                        pairwise=True)
    assert len(matrix) == 1 + 3 + 3
    pairs = [c for c in matrix if len(c.disabled_components()) == 2]
    assert len(pairs) == 3


def test_loo_matrix_skips_already_off_components():
    base = SystemConfig("ioctopus").without("ddio")
    matrix = loo_matrix(base)
    # ddio is already off under the base: no extra row for it.
    assert len(matrix) == len(component_names())
    assert all("ddio" in c.disabled_components() for c in matrix)
