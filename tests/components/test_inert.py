"""Default components are invisible; off-states are inert where they
cannot matter.

Two contracts from the refactor:

* a build under the *default* SystemConfig is bit-identical to the
  goldens captured before the registry existed (applying defaults flips
  no state and creates no events);
* switching a component off is exactly a no-op for figures whose
  workload never exercises it (no migrations -> arfs/xps dormant, no
  faults -> fast-failover dormant, exact accuracy -> train coalescing
  dormant).
"""

from __future__ import annotations

from repro.experiments.runners import run_pktgen, run_tcp_stream

D = 10_000_000  # 10 ms simulated, matching the determinism goldens
SHORT = 2_000_000


def test_default_system_config_reproduces_pktgen_golden():
    """Same point and golden as test_determinism, but routed explicitly
    through the SystemConfig path (components={})."""
    assert run_pktgen("ioctopus", 1500, D, seed=7, accuracy="exact",
                      components={}) == {
        "throughput_gbps": 48.60988235294118,
        "mpps": 4.0508235294117645,
        "membw_gbps": 0.0,
    }


def test_default_system_config_reproduces_tcp_rx_golden():
    assert run_tcp_stream("ioctopus", 4096, "rx", D, seed=0,
                          accuracy="exact", components={}) == {
        "throughput_gbps": 17.702430117647058,
        "membw_gbps": 0.0,
        "cpu_cores": 0.9999417647058824,
    }


def test_dormant_components_off_leave_pktgen_bit_identical():
    """pktgen on an exact, fault-free run never migrates, never faults,
    never coalesces: switching these components off must not move a
    single bit."""
    baseline = run_pktgen("ioctopus", 256, SHORT, accuracy="exact")
    for name in ("arfs_migration", "xps", "mpfs_fast_failover",
                 "train_coalescing", "no_reorder_resteer"):
        assert run_pktgen("ioctopus", 256, SHORT, accuracy="exact",
                          components={name: False}) == baseline, name


def test_active_components_off_change_the_metrics():
    """The complement check: components the pktgen Rx-path *does*
    exercise must move the numbers when removed."""
    baseline = run_pktgen("ioctopus", 256, SHORT, accuracy="exact")
    without_ddio = run_pktgen("ioctopus", 256, SHORT, accuracy="exact",
                              components={"ddio": False})
    assert without_ddio["mpps"] < baseline["mpps"]
    assert without_ddio["membw_gbps"] > baseline["membw_gbps"]


def test_train_coalescing_off_is_inert_under_exact_only():
    """Under the adaptive tier the same toggle is *not* inert — it
    forces single-burst trains — but the metrics still agree closely
    (coalescing is a fast path, not a model change)."""
    exact_off = run_pktgen("ioctopus", 256, SHORT, accuracy="exact",
                           components={"train_coalescing": False})
    exact_on = run_pktgen("ioctopus", 256, SHORT, accuracy="exact")
    assert exact_off == exact_on
    adaptive_on = run_pktgen("ioctopus", 256, SHORT, accuracy="adaptive")
    adaptive_off = run_pktgen("ioctopus", 256, SHORT,
                              accuracy="adaptive",
                              components={"train_coalescing": False})
    assert abs(adaptive_off["mpps"] - adaptive_on["mpps"]) \
        <= 0.05 * adaptive_on["mpps"]
