"""Each component's enable/disable path threads through the real layer."""

import pytest

from repro.components import SystemConfig
from repro.core.configurations import Testbed
from repro.sim.errors import DeviceGoneError
from repro.workloads.train import make_governor


def build(*names_off, preset="ioctopus"):
    return Testbed(system=SystemConfig(preset).without(*names_off))


def test_ddio_toggle_reaches_both_memory_systems():
    on, off = build(), build("ddio")
    assert on.server.machine.memory.ddio_enabled
    assert not off.server.machine.memory.ddio_enabled
    assert not off.client.machine.memory.ddio_enabled


def test_arfs_toggle_reaches_the_network_stacks():
    on, off = build(), build("arfs_migration")
    assert on.server.stack.arfs_enabled
    assert not off.server.stack.arfs_enabled
    assert not off.client.stack.arfs_enabled


def test_xps_toggle_reaches_the_network_stacks():
    off = build("xps")
    assert not off.server.stack.xps_enabled
    assert off.server.stack.arfs_enabled  # independent toggles


def test_fast_failover_toggle_reaches_the_firmware():
    on, off = build(), build("mpfs_fast_failover")
    assert on.server.nic.firmware.fast_failover
    assert not off.server.nic.firmware.fast_failover


def test_dead_pf_without_fast_failover_raises_device_gone():
    from repro.nic.packet import Flow
    off = build("mpfs_fast_failover")
    firmware = off.server.nic.firmware
    firmware.fail_pf(0)
    with pytest.raises(DeviceGoneError):
        firmware._resolve_pf(Flow.make(0), firmware.MAC, 0)


def test_dead_pf_with_fast_failover_steers_to_survivor():
    from repro.nic.packet import Flow
    on = build()
    firmware = on.server.nic.firmware
    firmware.fail_pf(0)
    pf_id, _rule = firmware._resolve_pf(Flow.make(0), firmware.MAC, 0)
    assert pf_id == 1


def test_moderation_toggle_reaches_every_queue():
    on, off = build(), build("interrupt_moderation")

    def queues(testbed):
        qs = testbed.server.driver.queues
        return list(qs.rx) + list(qs.tx)

    assert all(q.moderation.enabled for q in queues(on))
    assert all(not q.moderation.enabled for q in queues(off))


def test_train_coalescing_toggle_pins_governor_to_single_bursts():
    on, off = build(), build("train_coalescing")
    assert on.env.train_coalescing
    assert not off.env.train_coalescing
    assert make_governor(off.env).max_bursts == 1
    assert make_governor(on.env).max_bursts > 1 or not on.env.adaptive


def test_no_reorder_toggle_reaches_the_drivers():
    on, off = build(), build("no_reorder_resteer")
    assert on.server.driver.no_reorder_resteer
    assert not off.server.driver.no_reorder_resteer
    assert not off.client.driver.no_reorder_resteer


def test_toggles_reach_standard_preset_too():
    off = build("ddio", "xps", preset="remote")
    assert not off.server.machine.memory.ddio_enabled
    assert not off.server.stack.xps_enabled
